package core

import (
	"context"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"reflect"
	"strconv"
	"strings"
	"sync"
	"time"
	"unicode/utf8"

	"xdb/internal/connector"
	"xdb/internal/engine"
	"xdb/internal/netsim"
	"xdb/internal/obs"
	"xdb/internal/sqlparser"
	"xdb/internal/wire"
)

// System is the XDB middleware: the cross-database optimizer plus the
// delegation engine, wired to the underlying DBMSes through connectors.
// It holds no execution engine — queries execute entirely inside (and
// between) the registered DBMSes; the middleware only plans, deploys DDL,
// and hands the client its XDB query (Sec. III).
type System struct {
	// node is the middleware's node name in the topology (its control
	// traffic is accounted against this node).
	node string
	// clientNode is where the XDB client runs; the final result flows to
	// it.
	clientNode string

	connectors map[string]*connector.Connector
	catalog    *Catalog
	topo       *netsim.Topology
	clientWire *wire.Client
	opts       Options

	// health tracks per-node circuit breakers fed by RPC outcomes; its
	// recovery hook triggers orphan sweeps (see health.go).
	health *healthTracker
	// orphans parks short-lived relations whose drops failed, for the
	// janitor to retry (see orphans.go).
	orphans *orphanRegistry
	sweepMu sync.Mutex
	// admit is the global admission controller (in-flight cap, wait
	// queue, drain), nodes the per-node control-plane limiter (see
	// admission.go).
	admit *admitter
	nodes *nodeLimiter
	// bg tracks background janitor goroutines so Close can wait for them.
	bg sync.WaitGroup
	// inflight is the live registry of admitted, unfinished queries; the
	// wire flow sink routes per-edge accounting into it (see inflight.go).
	inflight *inflightRegistry
	// metricsLn/metricsSrv serve the process-wide metrics registry when
	// Options.MetricsAddr is set (see startMetricsServer).
	metricsLn  net.Listener
	metricsSrv *http.Server

	calibrated bool
	calMu      sync.Mutex
	// calNodes remembers which connectors calibrated successfully, so a
	// node that was down during the first calibration pass is retried
	// once it recovers.
	calNodes map[string]bool
	// statsCache caches per-table statistics between queries when
	// CacheStats is on.
	statsCache sync.Map // table name -> *engine.TableStats
	// statsFeedback holds per-table cardinality corrections derived from
	// observed actuals at materialization barriers (see
	// feedObservedRows); fetchTableMetadata substitutes a correction for
	// the stale snapshot it was derived against until the source reports
	// genuinely new statistics.
	statsFeedback sync.Map // table name -> *statsOverride
	// consults memoizes consultation probe results across queries when
	// Options.ConsultCacheTTL is set (nil otherwise; see
	// consultcache.go for the freshness rules).
	consults *consultCache
	// plans memoizes delegation plans and keeps their deployed objects
	// warm under refcounted leases when Options.PlanCacheSize is set (nil
	// otherwise; see plancache.go for the freshness rules). planStop
	// stops the deployment janitor; planStopOnce makes Close idempotent.
	plans        *planCache
	planStop     chan struct{}
	planStopOnce sync.Once
	// CacheStats reuses table statistics across queries instead of
	// re-gathering them during every preparation phase.
	CacheStats bool

	// hookBeforeAttempt, when set, runs right before each failover
	// attempt's execution phase (attempt 0 is the original run). Test
	// seam for chaos tests that must kill a node after deployment but
	// before execution.
	hookBeforeAttempt func(attempt int)
}

// NewSystem creates the middleware. topo may be nil (no shaping or
// accounting, unit tests); opts zero value is the paper's configuration.
func NewSystem(middlewareNode, clientNode string, topo *netsim.Topology, opts Options) *System {
	s := &System{
		node:       middlewareNode,
		clientNode: clientNode,
		connectors: map[string]*connector.Connector{},
		catalog:    NewCatalog(),
		topo:       topo,
		clientWire: wire.NewClientWith(clientNode, topo, opts.Wire),
		opts:       opts,
		orphans:    newOrphanRegistry(),
		calNodes:   map[string]bool{},
		admit:      newAdmitter(opts.MaxInFlight, opts.MaxQueue),
		nodes:      newNodeLimiter(opts.MaxPerNode),
		consults:   newConsultCache(opts.ConsultCacheTTL),
		plans:      newPlanCache(opts.PlanCacheSize, opts.DeploymentTTL),
		planStop:   make(chan struct{}),
		inflight:   newInflightRegistry(),
	}
	s.health = newHealthTracker(opts.BreakerThreshold, opts.BreakerBackoff, opts.BreakerBackoffMax, s.nodeRecovered)
	// Any breaker transition invalidates the node's cached consult
	// entries — costs consulted before an outage say nothing about the
	// node during or after it — and its cached plans, whose deployed
	// objects may not have survived the outage.
	s.health.onTransition = func(node string, _ BreakerState) {
		s.consults.invalidateNode(node)
		s.invalidatePlansOnNode(node)
	}
	registerSystemGauges(s)
	s.startMetricsServer()
	s.startDeploymentJanitor()
	return s
}

// startMetricsServer serves obs.Default in Prometheus text format on
// Options.MetricsAddr for the System's lifetime. Best-effort: a listen
// failure is logged, not fatal — observability must never take the
// middleware down.
func (s *System) startMetricsServer() {
	if s.opts.MetricsAddr == "" {
		return
	}
	ln, err := net.Listen("tcp", s.opts.MetricsAddr)
	if err != nil {
		s.slogger().Warn("xdb: metrics listener failed", "addr", s.opts.MetricsAddr, "err", err)
		return
	}
	s.metricsLn = ln
	mux := http.NewServeMux()
	mux.Handle("/", obs.Default.Handler())
	mux.Handle("/metrics", obs.Default.Handler())
	mux.HandleFunc("/debug/queries", s.handleDebugQueries)
	srv := &http.Server{Handler: mux}
	s.metricsSrv = srv
	s.bg.Add(1)
	go func() {
		defer s.bg.Done()
		srv.Serve(ln) // returns once the listener closes
	}()
}

// MetricsAddr returns the metrics endpoint's bound address ("" when no
// listener is serving) — with Options.MetricsAddr "127.0.0.1:0" this is
// how callers learn the picked port.
func (s *System) MetricsAddr() string {
	if s.metricsLn == nil {
		return ""
	}
	return s.metricsLn.Addr().String()
}

// slogger returns the structured logger for slow-query records.
func (s *System) slogger() *slog.Logger {
	if s.opts.SlowQueryLogger != nil {
		return s.opts.SlowQueryLogger
	}
	return slog.Default()
}

// NodeHealth returns every registered node's breaker state and failure
// counters.
func (s *System) NodeHealth() map[string]NodeHealth {
	snap := s.health.snapshot()
	// Nodes with no recorded RPC outcome yet still report as closed.
	for n := range s.connectors {
		if _, ok := snap[n]; !ok {
			snap[n] = NodeHealth{Node: n, State: BreakerClosed}
		}
	}
	return snap
}

// Options returns the system's optimizer options.
func (s *System) Options() Options { return s.opts }

// Close drains the system with the configured grace period (new queries
// are refused, in-flight ones get DrainGrace to finish, orphans are swept
// once), waits for background orphan sweeps, and releases the
// middleware's pooled wire connections (the client's execution
// transport). The registered connectors' clients are owned by whoever
// created them — the testbed closes those.
func (s *System) Close() error {
	s.stopDeploymentJanitor()
	grace := s.opts.DrainGrace
	if grace == 0 {
		grace = DefaultDrainGrace
	}
	if grace > 0 {
		ctx, cancel := context.WithTimeout(context.Background(), grace)
		s.Drain(ctx)
		cancel()
	} else {
		// Negative grace: stop admitting, skip the wait and the sweep.
		s.admit.startDrain()
	}
	// Warm deployments must not outlive the middleware: drop every cached
	// plan's objects (failed drops park as orphans for a later process).
	s.FlushPlans()
	if s.metricsSrv != nil {
		s.metricsSrv.Close() // unblocks Serve; bg.Wait collects it
	}
	s.bg.Wait()
	return s.clientWire.Close()
}

// reqCtx returns the context bounding one control-plane RPC (metadata,
// probe, or DDL round trip): the caller's context, tightened by
// Options.RequestTimeout. Cancelling the caller's context cancels the
// RPC.
func (s *System) reqCtx(ctx context.Context) (context.Context, context.CancelFunc) {
	if ctx == nil {
		ctx = context.Background()
	}
	if s.opts.RequestTimeout > 0 {
		return context.WithTimeout(ctx, s.opts.RequestTimeout)
	}
	return context.WithCancel(ctx)
}

// cleanupCtx returns the context bounding one DROP during deployment
// cleanup: CleanupTimeout, falling back to RequestTimeout. It is
// deliberately detached from the query's context — a cancelled query
// must still drop what it deployed, or every cancellation would park
// avoidable orphans.
func (s *System) cleanupCtx() (context.Context, context.CancelFunc) {
	d := s.opts.CleanupTimeout
	if d <= 0 {
		d = s.opts.RequestTimeout
	}
	if d > 0 {
		return context.WithTimeout(context.Background(), d)
	}
	return context.Background(), func() {}
}

// Register adds a DBMS connector.
func (s *System) Register(c *connector.Connector) { s.connectors[c.Node] = c }

// Connector returns the connector for a node.
func (s *System) Connector(node string) (*connector.Connector, bool) {
	c, ok := s.connectors[node]
	return c, ok
}

// Catalog exposes the global catalog.
func (s *System) Catalog() *Catalog { return s.catalog }

// RegisterTable maps a table of the global schema to its home DBMS. Schema
// and statistics are gathered lazily during each query's preparation
// phase.
func (s *System) RegisterTable(table, node string) error {
	if _, ok := s.connectors[node]; !ok {
		return fmt.Errorf("core: RegisterTable(%s): unknown node %q", table, node)
	}
	s.catalog.Put(&TableInfo{Name: table, Node: node})
	return nil
}

// Breakdown is the per-phase timing of one query (Fig. 15): preparation
// (parse + metadata gathering), logical optimization, annotation and
// finalization, delegation (DDL deployment), and execution.
type Breakdown struct {
	Prep  time.Duration
	Lopt  time.Duration
	Ann   time.Duration
	Deleg time.Duration
	Exec  time.Duration
	// ConsultRounds counts the annotation phase's consultation round
	// trips to the underlying DBMSes.
	ConsultRounds int
	// DegradedProbes counts the annotation decisions that could not
	// consult a DBMS — an open breaker excluded a placement candidate or
	// a cost probe failed — and fell back to the local cost model. Zero
	// on a healthy run.
	DegradedProbes int
	// CachedProbes counts the annotation probes answered without a round
	// trip: by the per-decision dedupe (always on) or by the cross-query
	// consult cache (Options.ConsultCacheTTL). A warm repeat of a query
	// shows ConsultRounds=0 and CachedProbes>0.
	CachedProbes int
	// DDLCount is the number of DDL statements the delegation deployed.
	// Zero on a plan-cache hit — the warm deployment is reused as-is.
	DDLCount int
	// PlanCacheHit reports whether the query was served from the
	// delegation-plan cache: planning, consultation, and deployment were
	// all skipped, and the query went straight to execution.
	PlanCacheHit bool
	// AdmissionWait is how long the query waited for admission before
	// planning began (zero when it was admitted immediately); Queued
	// reports whether it waited in the admission queue at all.
	AdmissionWait time.Duration
	Queued        bool
	// Replans counts the mid-query failover attempts this query spent: a
	// node died during delegation or execution, and the unexecuted suffix
	// was re-planned around it (Options.MaxReplans). Zero on a fault-free
	// run. The phase timings above accumulate across attempts.
	Replans int
	// FailedOver reports that the query hit a node-attributable fault and
	// still returned a correct result — via a suffix replan or the
	// mediator fallback.
	FailedOver bool
	// MediatorFallback reports that the query finished on the
	// middleware's embedded engine (Options.MediatorFallback) because no
	// in-situ placement survived the fault.
	MediatorFallback bool
	// Reopts counts the mid-query cardinality re-optimizations this
	// query spent: a materialized stage's actual row count diverged from
	// the annotation-time estimate beyond Options.ReoptThreshold, and
	// the unexecuted suffix was re-annotated with the observed
	// cardinality substituted (Options.MaxReopts). Zero with accurate
	// statistics, and always zero when MaxReopts is 0.
	Reopts int
	// EstimateErrors counts the materialization barriers whose observed
	// cardinality contradicted the estimate beyond the threshold — the
	// misestimations the feedback loop caught, whether or not the
	// re-optimization budget allowed acting on them.
	EstimateErrors int
	// SampleProbes counts the bounded-sample refinement probes the
	// optimizer decided to issue (Options.SampleLimit), across attempts;
	// the xdb_sample_probes_total metric splits them by outcome. Zero
	// with sampling disabled.
	SampleProbes int
}

// Total returns the end-to-end time, admission wait included — a queued
// query's Total matches its wall time, not just the time it spent being
// planned and executed. Use Work for the processing share alone.
func (b Breakdown) Total() time.Duration {
	return b.AdmissionWait + b.Work()
}

// Work returns the time the middleware actively spent on the query
// (planning, delegation, execution), excluding the admission wait — the
// Fig. 15 phase sum.
func (b Breakdown) Work() time.Duration {
	return b.Prep + b.Lopt + b.Ann + b.Deleg + b.Exec
}

// Coster implementation: the annotator consults through the system's
// connectors.

// CostOperator implements Coster. An open breaker fails fast without a
// round trip; actual probe outcomes feed the breaker. The probe takes one
// unit of the node's control-plane budget (Options.MaxPerNode).
func (s *System) CostOperator(ctx context.Context, node string, kind engine.CostKind, left, right, out float64) (float64, error) {
	c, ok := s.connectors[node]
	if !ok {
		return 0, fmt.Errorf("core: cost probe for unknown node %q", node)
	}
	if err := s.health.allow(node); err != nil {
		return 0, err
	}
	release, err := s.nodes.acquire(ctx, node, 1)
	if err != nil {
		return 0, err
	}
	defer release()
	rctx, cancel := s.reqCtx(ctx)
	defer cancel()
	v, err := c.CostOperator(rctx, kind, left, right, out)
	s.health.record(node, err)
	return v, err
}

// Healthy implements Coster: false while the node's breaker is open, so
// the annotator excludes it from placement candidates and skips probing
// it (degraded planning).
func (s *System) Healthy(node string) bool { return s.health.healthy(node) }

// LookupCost implements consultCacher over the cross-query consult cache
// (a guaranteed miss while ConsultCacheTTL is unset).
func (s *System) LookupCost(node string, kind engine.CostKind, left, right, out float64) (float64, bool) {
	return s.consults.lookup(node, kind, left, right, out)
}

// StoreCost implements consultCacher: memoizes one successfully
// consulted operator cost (a no-op while ConsultCacheTTL is unset).
func (s *System) StoreCost(node string, kind engine.CostKind, left, right, out, cost float64) {
	s.consults.store(node, kind, left, right, out, cost)
}

// ConsultCacheStats snapshots the consult cache: occupancy, hit/miss
// counters, and evictions. All zero while ConsultCacheTTL is unset.
func (s *System) ConsultCacheStats() ConsultCacheStats { return s.consults.stats() }

// PlanCacheStats snapshots the delegation-plan cache: warm deployments
// held, active leases, and hit/miss/eviction counters. All zero while
// PlanCacheSize is unset.
func (s *System) PlanCacheStats() PlanCacheStats { return s.plans.stats() }

// AllNodes implements Coster.
func (s *System) AllNodes() []string {
	out := make([]string, 0, len(s.connectors))
	for n := range s.connectors {
		out = append(out, n)
	}
	return out
}

// LinkFactor implements Coster: the movement-cost multiplier of the link
// between two nodes relative to the baseline LAN link.
func (s *System) LinkFactor(from, to string) float64 {
	if s.topo == nil || from == to {
		return 1
	}
	link := s.topo.Link(from, to)
	if link.Bandwidth <= 0 {
		return 1
	}
	f := netsim.LANLink.Bandwidth / link.Bandwidth
	if f < 1 {
		return 1
	}
	return f
}

// calibrate aligns cost units across all connectors. Calibration is
// best-effort per node: a node that is down keeps its identity calibration
// (1.0) and is retried on later queries, so an outage on one DBMS does not
// abort queries that never touch it. Failures feed the node's breaker.
func (s *System) calibrate(ctx context.Context) error {
	s.calMu.Lock()
	defer s.calMu.Unlock()
	if s.calibrated {
		return nil
	}
	allOK := true
	for name, c := range s.connectors {
		if s.calNodes[name] {
			continue
		}
		if err := s.health.allow(name); err != nil {
			allOK = false
			continue
		}
		rctx, cancel := s.reqCtx(ctx)
		err := c.Calibrate(rctx)
		cancel()
		s.health.record(name, err)
		if err != nil {
			allOK = false
			continue
		}
		s.calNodes[name] = true
	}
	s.calibrated = allOK
	return nil
}

// Plan is PlanContext with a background context, kept so existing
// callers compile unchanged.
func (s *System) Plan(sql string) (*Plan, *Breakdown, error) {
	return s.PlanContext(context.Background(), sql)
}

// PlanContext runs the optimizer pipeline — preparation, logical
// optimization, annotation, finalization — under the caller's context and
// returns the delegation plan without deploying it. Planning is
// control-plane only and is not subject to admission control.
func (s *System) PlanContext(ctx context.Context, sql string) (*Plan, *Breakdown, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	bd := &Breakdown{}
	plan, err := s.plan(ctx, sql, bd, nil)
	return plan, bd, err
}

// plan runs the optimizer pipeline. feedback, when non-empty, carries
// observed cardinalities keyed by logical signature (see reopt.go): they
// are substituted into the logical plan before annotation, so Rule 4
// prices placements and movements against actuals instead of the
// estimates a materialization barrier just disproved.
func (s *System) plan(ctx context.Context, sql string, bd *Breakdown, feedback map[string]float64) (*Plan, error) {
	// --- Preparation: parse, analyze, gather metadata through the DCs.
	start := time.Now()
	pctx, prepSpan := obs.Start(ctx, "prep")
	sel, err := sqlparser.ParseSelect(sql)
	if err != nil {
		prepSpan.SetErr(err)
		prepSpan.Finish()
		return nil, err
	}
	if err := s.calibrate(pctx); err != nil {
		prepSpan.SetErr(err)
		prepSpan.Finish()
		return nil, err
	}
	if err := s.gatherMetadata(pctx, sel); err != nil {
		prepSpan.SetErr(err)
		prepSpan.Finish()
		return nil, err
	}
	b, joinConjs, canon, err := buildLogical(s.catalog, sel)
	if err != nil {
		prepSpan.SetErr(err)
		prepSpan.Finish()
		return nil, err
	}
	// Sampling-based estimate refinement (sample.go): probe the
	// low-confidence relations before the joins are ordered and placed,
	// so both decisions see the refined cardinalities. Part of
	// preparation — it refines the statistics gathering just gathered.
	if s.opts.SampleLimit > 0 {
		scans := make([]*Scan, 0, len(b.order))
		for _, alias := range b.order {
			scans = append(scans, b.aliases[alias])
		}
		n := s.sampleRefine(pctx, scans)
		bd.SampleProbes += n
		if n > 0 {
			prepSpan.Set("samples", strconv.Itoa(n))
		}
	}
	prepSpan.Finish()
	bd.Prep += time.Since(start)

	// --- Logical optimization: pushdowns happened during build; order
	// the joins.
	start = time.Now()
	_, loptSpan := obs.Start(ctx, "lopt")
	joined, err := orderJoins(b, joinConjs, s.opts)
	loptSpan.SetErr(err)
	loptSpan.Finish()
	if err != nil {
		return nil, err
	}
	root := &Final{In: joined, Sel: canon}
	applyCardFeedback(root, feedback)
	bd.Lopt += time.Since(start)

	// --- Annotation and finalization.
	start = time.Now()
	actx, annSpan := obs.Start(ctx, "annotate")
	ann, err := annotate(actx, root, s, s.opts)
	if err != nil {
		annSpan.SetErr(err)
		annSpan.Finish()
		return nil, err
	}
	annSpan.Set("consult_rounds", strconv.Itoa(ann.ConsultRounds))
	if ann.DegradedProbes > 0 {
		annSpan.Set("degraded", strconv.Itoa(ann.DegradedProbes))
	}
	if ann.CachedProbes > 0 {
		annSpan.Set("cached", strconv.Itoa(ann.CachedProbes))
	}
	annSpan.Finish()
	plan := finalize(root, ann, collectColTypes(b))
	// Accumulate, not assign: a mid-query failover replans, and the
	// breakdown reports the query's total planning spend.
	bd.Ann += time.Since(start)
	bd.ConsultRounds += ann.ConsultRounds
	bd.DegradedProbes += ann.DegradedProbes
	bd.CachedProbes += ann.CachedProbes
	met.consults.Add(int64(ann.ConsultRounds))
	met.degraded.Add(int64(ann.DegradedProbes))
	return plan, nil
}

// gatherMetadata fetches schema and statistics for every referenced table,
// republishing catalog entries immutably so concurrent queries never
// observe a half-updated entry. Tables on different nodes fetch in
// parallel (the per-node semaphores still bound what any single DBMS
// sees); the first failure cancels the rest of the fan-out.
func (s *System) gatherMetadata(ctx context.Context, sel *sqlparser.Select) error {
	seen := map[string]bool{}
	var keys []string
	var work []*TableInfo
	for _, ref := range sel.From {
		key := strings.ToLower(ref.Name)
		if seen[key] {
			continue
		}
		seen[key] = true
		info, ok := s.catalog.Lookup(ref.Name)
		if !ok {
			return fmt.Errorf("core: unknown table %q in global catalog", ref.Name)
		}
		if s.CacheStats && info.Schema != nil && info.Stats != nil {
			continue // fully cached entry
		}
		keys = append(keys, key)
		work = append(work, info)
	}
	if s.opts.SerialAnnotation || len(work) < 2 {
		for i := range work {
			if err := s.fetchTableMetadata(ctx, keys[i], work[i]); err != nil {
				return err
			}
		}
		return nil
	}
	return fanOutFirstErr(ctx, len(work), func(fctx context.Context, i int) error {
		return s.fetchTableMetadata(fctx, keys[i], work[i])
	})
}

// fetchTableMetadata fetches one table's missing schema and statistics
// and republishes its catalog entry. A stats-RPC failure still publishes
// the schema fetched before it, so the next attempt resumes from the
// partial entry instead of paying the schema round trip again.
func (s *System) fetchTableMetadata(ctx context.Context, key string, info *TableInfo) error {
	mdSpan := obs.SpanFrom(ctx).Child("metadata")
	mdSpan.Set("table", info.Name)
	mdSpan.Set("node", info.Node)
	defer mdSpan.Finish()
	conn := s.connectors[info.Node]
	// The table's home must answer — a query referencing it cannot
	// degrade around the node that holds its rows. An open breaker
	// fails fast instead of burning a timeout.
	if err := s.health.allow(info.Node); err != nil {
		mdSpan.SetErr(err)
		return err
	}
	// One unit of the node's control-plane budget covers both RPCs, so
	// the metadata fan-out stays inside MaxPerNode like any other
	// control-plane burst.
	release, err := s.nodes.acquire(ctx, info.Node, 1)
	if err != nil {
		mdSpan.SetErr(err)
		return err
	}
	defer release()
	updated := &TableInfo{Name: info.Name, Node: info.Node, Schema: info.Schema, Stats: info.Stats}
	if updated.Schema == nil {
		rctx, cancel := s.reqCtx(ctx)
		schema, err := conn.TableSchema(rctx, info.Name)
		cancel()
		s.health.record(info.Node, err)
		if err != nil {
			mdSpan.SetErr(err)
			return err
		}
		updated.Schema = schema
	}
	refreshStats := true
	if s.CacheStats {
		if st, ok := s.statsCache.Load(key); ok {
			updated.Stats = st.(*engine.TableStats)
			refreshStats = false
		}
	}
	if refreshStats {
		rctx, cancel := s.reqCtx(ctx)
		st, err := conn.Stats(rctx, info.Name)
		cancel()
		s.health.record(info.Node, err)
		if err != nil {
			s.catalog.Put(updated) // keep the schema: partial beats absent
			mdSpan.SetErr(err)
			return err
		}
		// A cardinality-feedback override substitutes the observed-rows
		// correction for a stale snapshot the node still reports. The
		// first substitution trips the statsEqual change detection below
		// — invalidating consulted costs and cached plans built on the
		// stale estimates — after which the catalog holds the corrected
		// statistics and the path is quiescent. If the node reports
		// anything but the snapshot the correction was derived against,
		// the table genuinely changed and the override is dropped.
		if ov, ok := s.statsFeedback.Load(key); ok {
			o := ov.(*statsOverride)
			if statsEqual(o.base, st) {
				st = o.corrected
			} else {
				s.statsFeedback.Delete(key)
			}
		}
		// A refresh that actually changed the table's statistics drops
		// the node's consult-cache entries — costs consulted against the
		// old statistics no longer describe it — and the node's cached
		// plans, whose placements were functions of the old statistics.
		if info.Stats != nil && !statsEqual(info.Stats, st) {
			s.consults.invalidateNode(info.Node)
			s.invalidatePlansOnNode(info.Node)
		}
		updated.Stats = st
		if s.CacheStats {
			s.statsCache.Store(key, st)
		}
	}
	s.catalog.Put(updated)
	return nil
}

// statsEqual reports whether a freshly fetched statistics snapshot
// matches the previous one (row count and all column stats).
func statsEqual(a, b *engine.TableStats) bool {
	return reflect.DeepEqual(a, b)
}

// Result is the outcome of a cross-database query.
type Result struct {
	*engine.Result
	Plan      *Plan
	Breakdown Breakdown
	// XDBQuery is the rewritten query the client executed.
	XDBQuery string
	// RootNode is the DBMS the client executed it on.
	RootNode string
	// CleanupErr is non-nil when some of the query's short-lived
	// relations could not be dropped; those objects are parked in the
	// orphan registry (System.Orphans) for the janitor to retry. The
	// query itself still succeeded.
	CleanupErr error
	// Trace is the query's finished span tree when tracing was on
	// (Options.Trace, Options.SlowQueryThreshold, or a span carried on
	// the caller's context); nil otherwise. Render it with
	// Trace.String() or export it with Trace.JSON().
	Trace *obs.Span
	// QID is the executed deployment's query id — the <qid> in the
	// short-lived relations' xdb<qid>_* names (0 for a mediator-fallback
	// finish, which deploys nothing).
	QID int64
	// Flows is the per-edge wire flow accounting observed while the
	// query ran: one entry per attributed stream (implicit pulls,
	// explicit materialization fetches, re-optimization barriers, and the
	// root result delivery), across all attempts. Result.Analyze renders
	// it against the executed plan.
	Flows []EdgeFlow
}

// Query is QueryContext with a background context, kept so existing
// callers compile unchanged.
func (s *System) Query(sql string) (*Result, error) {
	return s.QueryContext(context.Background(), sql)
}

// QueryContext runs the full XDB pipeline under the caller's context:
// admission, optimization, delegation, execution of the XDB query on the
// root DBMS (triggering the decentralized cascade), cleanup of the
// short-lived relations, and the result. Options.QueryTimeout tightens
// the context end to end. Cancelling the context aborts planning,
// delegation, and execution, but never the cleanup — a cancelled query
// drops what it deployed on a detached context, so cancellation parks no
// avoidable orphans. Under overload the query may be shed with
// OverloadError; during shutdown with DrainingError.
func (s *System) QueryContext(ctx context.Context, sql string) (res *Result, err error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if s.opts.QueryTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, s.opts.QueryTimeout)
		defer cancel()
	}

	// --- Tracing: a root span per query when enabled — by Options, by
	// the slow-query log (which needs the tree to summarize), or by a
	// span the caller put on the context (obs.ContextWithSpan). Off, the
	// span stays nil and every instrumentation point below is a no-op.
	var qspan *obs.Span
	if parent := obs.SpanFrom(ctx); parent != nil {
		qspan = parent.Child("query")
	} else if s.opts.Trace || s.opts.SlowQueryThreshold > 0 {
		qspan = obs.NewSpan("query")
	}
	var bd Breakdown
	wallStart := time.Now()
	if qspan != nil {
		qspan.Set("sql", truncateSQL(sql))
		ctx = obs.ContextWithSpan(ctx, qspan)
		// However the query ends, the exposed tree is closed — a
		// cancelled deployment must not leave orphan open spans.
		defer qspan.FinishAll()
	}
	var plan *Plan
	defer func() {
		wall := time.Since(wallStart)
		met.queries.With(queryOutcome(err)).Inc()
		observeSeconds(met.queryDur, wall)
		qspan.SetErr(err)
		s.logSlowQuery(sql, wall, &bd, plan, qspan, err)
	}()

	// --- Admission: take an in-flight slot (or queue for one while the
	// deadline allows).
	waitStart := time.Now()
	admSpan := qspan.Child("admission")
	release, queued, err := s.admit.admit(ctx)
	wait := time.Since(waitStart)
	observeSeconds(met.admissionWait, wait)
	if queued {
		admSpan.Set("queued", "true")
	}
	admSpan.SetErr(err)
	admSpan.Finish()
	if err != nil {
		return nil, err
	}
	defer release()

	// Admitted: the query is now visible to the inspector until it
	// finishes (the deferred deregister also unroutes its flow qids, so a
	// failed-over or cancelled query never leaks an entry).
	inf := s.inflight.register(sql)
	defer s.inflight.deregister(inf)

	bd = Breakdown{AdmissionWait: wait, Queued: queued}

	// The plan-cache key is the canonical rendering of the parsed
	// statement, so formatting differences (case of keywords, whitespace)
	// hit the same entry. An unparsable statement skips the cache and
	// fails inside the pipeline with the real parse error.
	var cacheKey string
	if s.plans != nil {
		if sel, perr := sqlparser.ParseSelect(sql); perr == nil {
			cacheKey = sel.String()
		}
	}

	// The plan→deploy→execute pipeline runs inside the failover loop: a
	// node-attributable mid-query fault re-plans the unexecuted suffix
	// around the dead node, up to Options.MaxReplans times (see
	// failover.go). With MaxReplans 0 — the paper's configuration — the
	// first fault fails the query exactly as before.
	return s.runWithFailover(ctx, qspan, sql, cacheKey, &bd, &plan, inf)
}

// NoConnectorError reports an execution attempt against a node no
// connector is registered for — a deployment handed to the wrong System,
// or a plan cached before the topology changed.
type NoConnectorError struct {
	Node string
}

func (e *NoConnectorError) Error() string {
	return fmt.Sprintf("core: no connector registered for execution node %q", e.Node)
}

// executeDeployment runs the deployment's XDB query on its root DBMS and
// returns the result rows. The caller's context bounds the read.
func (s *System) executeDeployment(ctx context.Context, qspan *obs.Span, dep *Deployment) (*engine.Result, error) {
	execSpan := qspan.Child("execute")
	execSpan.Set("node", dep.Node)
	defer execSpan.Finish()
	rootConn, ok := s.connectors[dep.Node]
	if !ok {
		err := &NoConnectorError{Node: dep.Node}
		execSpan.SetErr(err)
		return nil, err
	}
	eres, err := s.clientWire.QueryAll(ctx, rootConn.Addr, dep.Node, dep.XDBQuery)
	if eres != nil {
		execSpan.AddRows(int64(len(eres.Rows)))
	}
	execSpan.SetErr(err)
	if err != nil {
		// Attribute the execution stream's failure to the root DBMS so the
		// failover classifier can pin a bare deadline on a node. The
		// wrapper is message-transparent.
		return eres, &nodeFaultError{node: dep.Node, err: err}
	}
	return eres, nil
}

// truncateSQL bounds the SQL text attached to spans and log records,
// cutting on a rune boundary so multi-byte text never truncates to
// invalid UTF-8.
func truncateSQL(sql string) string {
	const max = 200
	if len(sql) <= max {
		return sql
	}
	cut := max
	for cut > 0 && !utf8.RuneStart(sql[cut]) {
		cut--
	}
	return sql[:cut] + "..."
}

// logSlowQuery emits one structured record for a query whose wall time
// met Options.SlowQueryThreshold: the phase breakdown, the delegation
// plan shape, and the span summary in one line.
func (s *System) logSlowQuery(sql string, wall time.Duration, bd *Breakdown, plan *Plan, trace *obs.Span, err error) {
	if s.opts.SlowQueryThreshold <= 0 || wall < s.opts.SlowQueryThreshold {
		return
	}
	attrs := []any{
		"wall", wall,
		"sql", truncateSQL(sql),
		"admission_wait", bd.AdmissionWait,
		"queued", bd.Queued,
		"prep", bd.Prep,
		"lopt", bd.Lopt,
		"annotate", bd.Ann,
		"delegate", bd.Deleg,
		"execute", bd.Exec,
		"consult_rounds", bd.ConsultRounds,
		"ddl_count", bd.DDLCount,
	}
	if bd.PlanCacheHit {
		attrs = append(attrs, "plan_cache_hit", true)
	}
	if bd.DegradedProbes > 0 {
		attrs = append(attrs, "degraded_probes", bd.DegradedProbes)
	}
	if bd.CachedProbes > 0 {
		attrs = append(attrs, "cached_probes", bd.CachedProbes)
	}
	if bd.Replans > 0 {
		attrs = append(attrs, "replans", bd.Replans)
	}
	if bd.Reopts > 0 {
		attrs = append(attrs, "reopts", bd.Reopts)
	}
	if bd.EstimateErrors > 0 {
		attrs = append(attrs, "estimate_errors", bd.EstimateErrors)
	}
	if bd.SampleProbes > 0 {
		attrs = append(attrs, "sample_probes", bd.SampleProbes)
	}
	if bd.FailedOver {
		attrs = append(attrs, "failed_over", true)
	}
	if bd.MediatorFallback {
		attrs = append(attrs, "mediator_fallback", true)
	}
	if plan != nil {
		attrs = append(attrs, "plan", planShape(plan))
	}
	if trace != nil {
		attrs = append(attrs, "spans", trace.Count(""),
			"probe_spans", trace.Count("probe"), "ddl_spans", trace.Count("ddl"))
	}
	if err != nil {
		attrs = append(attrs, "err", err.Error())
	}
	s.slogger().Warn("xdb: slow query", attrs...)
}

// planShape renders the delegation plan's shape in one token: task
// count, the root's node, and the movement split, e.g.
// "tasks=5 root=db1 moves=3i/1e".
func planShape(p *Plan) string {
	implicit, explicit := p.Movements()
	root := ""
	if p.Root != nil {
		root = p.Root.Node
	}
	return fmt.Sprintf("tasks=%d root=%s moves=%di/%de", len(p.Tasks), root, implicit, explicit)
}
