package core

import (
	"context"
	"fmt"
	"io"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"xdb/internal/connector"
	"xdb/internal/engine"
	"xdb/internal/wire"
)

// hungListener accepts connections and reads them forever without ever
// answering — a node that is up at the TCP level but dead above it.
func hungListener(t *testing.T) net.Listener {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go func(conn net.Conn) {
				defer conn.Close()
				io.Copy(io.Discard, conn)
			}(conn)
		}
	}()
	return ln
}

// TestCleanupSweepsPastHungNode: a drop against a hung node must time out
// per CleanupTimeout and the sweep must still drop the survivors' objects.
func TestCleanupSweepsPastHungNode(t *testing.T) {
	live := engine.New(engine.Config{Name: "live", Vendor: engine.VendorTest})
	srv, err := wire.NewServer(live)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	hung := hungListener(t)

	sys := NewSystem("m", "c", nil, Options{CleanupTimeout: 150 * time.Millisecond})
	defer sys.Close()
	client := wire.NewClient("m", nil)
	defer client.Close()
	sys.Register(connector.New("live", srv.Addr(), engine.VendorTest, client))
	sys.Register(connector.New("hung", hung.Addr().String(), engine.VendorTest, client))

	if err := live.Exec("CREATE TABLE t (a BIGINT)"); err != nil {
		t.Fatal(err)
	}
	if err := live.Exec("CREATE VIEW xdb1_t1 AS SELECT a FROM t"); err != nil {
		t.Fatal(err)
	}
	if err := live.Exec("CREATE VIEW xdb1_t2 AS SELECT a FROM t"); err != nil {
		t.Fatal(err)
	}

	// Reverse creation order puts the hung node's drop between the two
	// live drops: both sides of it must still execute.
	dep := &Deployment{cleanup: []cleanupItem{
		{node: "live", sql: "DROP VIEW xdb1_t1"},
		{node: "hung", sql: "DROP VIEW xdb1_x"},
		{node: "live", sql: "DROP VIEW xdb1_t2"},
	}}
	start := time.Now()
	err = sys.cleanupDeployment(context.Background(), dep)
	elapsed := time.Since(start)
	if err == nil {
		t.Fatal("cleanup reported success despite the hung node")
	}
	if !strings.Contains(err.Error(), "hung") {
		t.Errorf("cleanup error does not name the hung node: %v", err)
	}
	if elapsed > 2*time.Second {
		t.Errorf("cleanup took %v; each drop must be bounded by CleanupTimeout", elapsed)
	}
	for _, v := range live.Catalog().ViewNames() {
		if strings.HasPrefix(v, "xdb") {
			t.Errorf("survivor still has %s — sweep stopped at the hung node", v)
		}
	}
}

// TestCleanupUnboundedWithoutTimeouts: with no timeouts configured,
// cleanupCtx leaves drops unbounded (the paper configuration) — verify the
// context carries no deadline rather than hanging a real sweep.
func TestCleanupUnboundedWithoutTimeouts(t *testing.T) {
	sys := NewSystem("m", "c", nil, Options{})
	defer sys.Close()
	ctx, cancel := sys.cleanupCtx()
	defer cancel()
	if _, ok := ctx.Deadline(); ok {
		t.Error("zero Options must leave cleanup unbounded")
	}
	// CleanupTimeout falls back to RequestTimeout when unset.
	sys2 := NewSystem("m", "c", nil, Options{RequestTimeout: time.Second})
	defer sys2.Close()
	ctx2, cancel2 := sys2.cleanupCtx()
	defer cancel2()
	if _, ok := ctx2.Deadline(); !ok {
		t.Error("cleanup must inherit RequestTimeout when CleanupTimeout is unset")
	}
}

// TestRegisterServerDedupes: concurrent registrations for one (consumer,
// producer) pair must run the create exactly once and share its outcome;
// distinct pairs must not be serialized into one.
func TestRegisterServerDedupes(t *testing.T) {
	dep := &Deployment{}
	var creates int
	var mu sync.Mutex
	const workers = 16
	var wg sync.WaitGroup
	errs := make([]error, workers)
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			key := "db1\x00db2"
			if i%4 == 3 {
				key = "db3\x00db2" // a different consumer: its own registration
			}
			errs[i] = dep.registerServer(key, func() error {
				mu.Lock()
				creates++
				mu.Unlock()
				time.Sleep(10 * time.Millisecond) // widen the race window
				dep.addDDL(1)
				return nil
			})
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Errorf("worker %d: %v", i, err)
		}
	}
	if creates != 2 {
		t.Errorf("create ran %d times, want 2 (one per distinct node pair)", creates)
	}
	if dep.DDLCount != 2 {
		t.Errorf("DDLCount = %d, want 2 — duplicate CREATE SERVER double-counted", dep.DDLCount)
	}

	// A failed registration is shared by every waiter for that key.
	dep2 := &Deployment{}
	failErr := fmt.Errorf("node down")
	var wg2 sync.WaitGroup
	errs2 := make([]error, 8)
	for i := 0; i < 8; i++ {
		wg2.Add(1)
		go func(i int) {
			defer wg2.Done()
			errs2[i] = dep2.registerServer("a\x00b", func() error {
				time.Sleep(5 * time.Millisecond)
				return failErr
			})
		}(i)
	}
	wg2.Wait()
	for i, err := range errs2 {
		if err != failErr {
			t.Errorf("worker %d: err = %v, want the shared failure", i, err)
		}
	}
}
