package core

import (
	"context"
	"fmt"
	"math"
	"strconv"
	"strings"

	"xdb/internal/engine"
	"xdb/internal/obs"
)

// Adaptive mid-query re-optimization, the cardinality half of the
// recovery loop (the fault half lives in failover.go). The paper fixes
// the delegation plan at annotation time, so Rule 4's
// implicit-vs-explicit and placement verdicts are functions of the
// statistics gathered during preparation — and stale or skewed
// statistics silently pick the wrong site or the wrong movement for the
// whole query. Explicit-movement edges give the loop a natural
// checkpoint: their foreign tables materialize the producing task's
// full output on the consumer, so the actual cardinality is observable
// there before the suffix above them has run.
//
//	deploy ──► for each explicit edge, in dependency order:
//	           force the materialization (SELECT COUNT(*) barrier)
//	           and read back the actual row count
//	       ──► actual vs EstRows diverged beyond Options.ReoptThreshold?
//	           record the actual under the edge's logical signature,
//	           refresh the source table's statistics (statsOverride),
//	           and re-run the optimizer pipeline for the whole statement
//	           — annotation now costs the unexecuted suffix with actuals
//	       ──► re-deploy, adopting every surviving object by structural
//	           signature; materialized stages are never re-shipped
//	       ──► resume, up to Options.MaxReopts re-optimizations
//
// Re-optimization shares runWithFailover's retire/reuse machinery but
// not the fault budget: reopts never consume MaxReplans, never trip
// breakers, and never exclude nodes — the cluster is healthy, only the
// estimates were wrong.

// DefaultReoptThreshold is the estimate-vs-actual cardinality ratio a
// materialized edge must exceed (strictly, in either direction) to
// trigger a suffix re-optimization when Options.ReoptThreshold is unset.
const DefaultReoptThreshold = 4.0

// reoptThreshold resolves the configured divergence threshold.
func (s *System) reoptThreshold() float64 {
	if s.opts.ReoptThreshold > 0 {
		return s.opts.ReoptThreshold
	}
	return DefaultReoptThreshold
}

// reoptDiverges reports whether an estimate and an observation disagree
// by strictly more than the threshold ratio, in either direction. Both
// sides clamp to one row so empty relations compare stably.
func reoptDiverges(est, actual, threshold float64) bool {
	est = math.Max(est, 1)
	actual = math.Max(actual, 1)
	r := est / actual
	if r < 1 {
		r = 1 / r
	}
	return r > threshold
}

// observeMaterialized walks the plan's explicit-movement edges in
// dependency order, forces each foreign table's materialization with a
// COUNT(*) barrier on the consumer (the engine's explicit movement is
// fill-on-first-scan, so the stored rows are reused by the later
// execution), and compares the actual row count against the
// annotation-time estimate. Every observation is recorded in fb under
// the edge's logical signature and fed to the cross-query statistics
// loop (feedObservedRows). The walk stops at the first diverging edge —
// the suffix above it is about to be re-planned, and forcing the
// remaining materializations would ship data a corrected plan may not
// want shipped — and returns it with the observed count. Edges already
// present in fb (observed by a prior attempt) are skipped, so a
// re-optimized plan that kept an edge does not re-pay its barrier.
// A barrier failure is returned node-attributed for the fault loop.
func (s *System) observeMaterialized(ctx context.Context, qspan *obs.Span, plan *Plan, fb map[string]float64) (*Edge, float64, error) {
	threshold := s.reoptThreshold()
	for _, e := range plan.Edges {
		if e.Move != MoveExplicit || e.Placeholder == nil || e.Placeholder.Rel == "" || e.Sig == "" {
			continue
		}
		if _, seen := fb[e.Sig]; seen {
			continue
		}
		conn, ok := s.connectors[e.To.Node]
		if !ok {
			continue
		}
		sp := qspan.Child("observe")
		sp.Set("node", e.To.Node)
		sp.Set("rel", e.Placeholder.Rel)
		sp.Set("est", strconv.FormatFloat(e.EstRows, 'f', 0, 64))
		// Data-plane, like execution: the barrier makes the consumer pull
		// and store the producer's whole output, so it is bounded by the
		// query context, not the control-plane RequestTimeout.
		res, err := conn.Query(ctx, "SELECT COUNT(*) FROM "+e.Placeholder.Rel)
		if err != nil {
			sp.SetErr(err)
			sp.Finish()
			return nil, 0, &nodeFaultError{node: e.To.Node,
				err: fmt.Errorf("core: observe %s on %s: %w", e.Placeholder.Rel, e.To.Node, err)}
		}
		if len(res.Rows) == 0 || len(res.Rows[0]) == 0 {
			sp.Finish()
			continue
		}
		actual := float64(res.Rows[0][0].Int())
		sp.Set("actual", strconv.FormatFloat(actual, 'f', 0, 64))
		sp.Finish()
		fb[e.Sig] = actual
		s.feedObservedRows(e, actual)
		if reoptDiverges(e.EstRows, actual, threshold) {
			return e, actual, nil
		}
	}
	return nil, 0, nil
}

// statsOverride corrects one table's statistics with an observed row
// count. base is the stale snapshot the correction was derived against;
// as long as the node keeps reporting exactly base, metadata refreshes
// substitute corrected (see fetchTableMetadata). The moment the node
// reports anything else, the table genuinely changed and the override
// is dropped in favour of the fresh truth.
type statsOverride struct {
	base      *engine.TableStats
	corrected *engine.TableStats
}

// feedObservedRows closes the cross-query half of the feedback loop:
// when a materialized edge's producer is a bare (filtered, pruned) scan,
// the observed output count implies the source table's true row count
// (actual / filter selectivity). If that implied count contradicts the
// catalog's snapshot beyond the reopt threshold, a statsOverride is
// registered so the next metadata refresh publishes the corrected
// statistics — which trips the existing statsEqual change detection,
// invalidating the consult-cache and plan-cache entries built on the
// stale estimates. The next query then plans with actuals from the
// start. Join-output edges carry no single-table attribution and feed
// only the in-query feedback map.
func (s *System) feedObservedRows(e *Edge, actual float64) {
	sc := bareScanRoot(e.From)
	if sc == nil {
		return
	}
	info, ok := s.catalog.Lookup(sc.Table)
	if !ok || info.Stats == nil {
		return
	}
	implied := math.Max(actual, 1)
	if sc.Filter != nil {
		if sel := selectivity(sc.Filter, sc); sel > 0 {
			implied = math.Max(implied/sel, implied)
		}
	}
	if !reoptDiverges(float64(info.Stats.RowCount), implied, s.reoptThreshold()) {
		return
	}
	key := strings.ToLower(sc.Table)
	base := info.Stats
	if prev, ok := s.statsFeedback.Load(key); ok {
		// Keep the original stale snapshot as the drift sentinel: the
		// catalog may already hold a corrected version, and the node
		// still reports the original.
		base = prev.(*statsOverride).base
	}
	corrected := scaleStats(info.Stats, int64(math.Round(implied)))
	s.statsFeedback.Store(key, &statsOverride{base: base, corrected: corrected})
	if s.CacheStats {
		// The cached-stats path never re-fetches, so the correction is
		// pushed directly instead of substituted at fetch time.
		s.statsCache.Store(key, corrected)
		s.catalog.Put(&TableInfo{Name: info.Name, Node: info.Node, Schema: info.Schema, Stats: corrected})
		s.consults.invalidateNode(info.Node)
		s.invalidatePlansOnNode(info.Node)
	}
}

// feedImplicitFlows closes the feedback loop for the edges the barriers
// cannot see: implicit movements never materialize, but the wire flow
// accounting observed their pull streams' actual row counts while the
// query executed. After a clean execution each finished implicit pull
// feeds the same statsOverride path the explicit barriers use — strictly
// post-hoc and cross-query: the finished query is untouched, no
// mid-query re-optimization triggers from an implicit edge, but the next
// misestimated pull-heavy query plans against corrected statistics.
// qid scopes the lookup to the attempt that actually executed.
func (s *System) feedImplicitFlows(inf *inflightEntry, plan *Plan, qid int64) {
	if inf == nil || plan == nil {
		return
	}
	for _, e := range plan.Edges {
		if e.Move != MoveImplicit || e.Sig == "" {
			continue
		}
		actual, done := inf.flowObserved(qid, e.From.ID)
		if !done {
			continue
		}
		s.feedObservedRows(e, float64(actual))
	}
}

// bareScanRoot returns the task's fragment as a single (filtered,
// pruned) scan, or nil when the fragment computes more than one
// relation's worth of data.
func bareScanRoot(t *Task) *Scan {
	if t == nil || len(t.Inputs) != 0 {
		return nil
	}
	sc, ok := t.Root.(*Scan)
	if !ok {
		return nil
	}
	return sc
}

// scaleStats returns a copy of st with RowCount set to rows and the
// per-column distinct counts scaled proportionally (clamped to [1,
// rows] for columns that had any distinct values). Min/Max/NullFrac are
// value-domain properties and survive unchanged.
func scaleStats(st *engine.TableStats, rows int64) *engine.TableStats {
	if rows < 1 {
		rows = 1
	}
	out := &engine.TableStats{
		RowCount:    rows,
		AvgRowBytes: st.AvgRowBytes,
		Columns:     make([]engine.ColumnStats, len(st.Columns)),
	}
	copy(out.Columns, st.Columns)
	f := 1.0
	if st.RowCount > 0 {
		f = float64(rows) / float64(st.RowCount)
	}
	for i := range out.Columns {
		d := int64(math.Round(float64(out.Columns[i].Distinct) * f))
		if d < 1 && out.Columns[i].Distinct > 0 {
			d = 1
		}
		if d > rows {
			d = rows
		}
		out.Columns[i].Distinct = d
	}
	return out
}
