package core

import (
	"math"
	"strings"

	"xdb/internal/engine"
	"xdb/internal/sqlparser"
	"xdb/internal/sqltypes"
)

// Cardinality estimation for the cross-database optimizer. Unlike the
// per-engine planners (which only see local data), XDB estimates over the
// global catalog's statistics gathered during the preparation phase, so it
// can order joins across DBMSes. The formulas are the textbook ones the
// paper cites ([42], [43]): attribute-level selectivities with min/max
// interpolation for ranges, and |L||R|/max(d_L, d_R) for equi joins.

// estimateScan returns the post-filter cardinality of a scan.
func estimateScan(s *Scan) float64 {
	rows := float64(s.Stats.RowCount)
	if s.Filter != nil {
		rows *= selectivity(s.Filter, s)
	}
	return math.Max(rows, 1)
}

// estimateWidth returns the estimated encoded bytes per pruned output row.
func estimateWidth(s *Scan) float64 {
	if len(s.Cols) == 0 || s.Stats.RowCount == 0 {
		return 16
	}
	// Scale the full-row width by the kept-column fraction, with a typed
	// floor per column.
	w := 4.0
	for _, name := range s.Cols {
		idx, err := s.Schema.Resolve("", name)
		if err != nil {
			w += 12
			continue
		}
		switch s.Schema.Columns[idx].Type {
		case sqltypes.TypeString:
			w += 24
		case sqltypes.TypeBool:
			w += 2
		default:
			w += 9
		}
	}
	return w
}

// selectivity estimates the filter's selectivity on a scan using its
// column statistics.
func selectivity(pred sqlparser.Expr, s *Scan) float64 {
	switch x := pred.(type) {
	case *sqlparser.BinaryExpr:
		switch x.Op {
		case sqlparser.OpAnd:
			return clamp01(selectivity(x.L, s) * selectivity(x.R, s))
		case sqlparser.OpOr:
			return orSelectivity(selectivity(x.L, s), selectivity(x.R, s))
		case sqlparser.OpEq:
			if cs := columnStats(x.L, s); cs != nil && cs.Distinct > 0 {
				return 1 / float64(cs.Distinct)
			}
			if cs := columnStats(x.R, s); cs != nil && cs.Distinct > 0 {
				return 1 / float64(cs.Distinct)
			}
			return 0.05
		case sqlparser.OpNe:
			return 0.95
		default:
			return rangeSelectivity(x, s)
		}
	case *sqlparser.BetweenExpr:
		lo := constValue(x.Lo)
		hi := constValue(x.Hi)
		if cs := columnStats(x.E, s); cs != nil && lo != nil && hi != nil {
			f := fraction(cs, *lo, *hi)
			if x.Not {
				return clamp01(1 - f)
			}
			return f
		}
		return 0.25
	case *sqlparser.InExpr:
		if cs := columnStats(x.E, s); cs != nil && cs.Distinct > 0 {
			f := clamp01(float64(len(x.List)) / float64(cs.Distinct))
			if x.Not {
				return clamp01(1 - f)
			}
			return f
		}
		return clamp01(0.05 * float64(len(x.List)))
	case *sqlparser.LikeExpr:
		if x.Not {
			return 0.9
		}
		return 0.1
	case *sqlparser.IsNullExpr:
		if cs := columnStats(x.E, s); cs != nil {
			if x.Not {
				return clamp01(1 - cs.NullFrac)
			}
			return clamp01(cs.NullFrac)
		}
		return 0.05
	case *sqlparser.NotExpr:
		return clamp01(1 - selectivity(x.E, s))
	default:
		return 0.5
	}
}

// rangeSelectivity handles col <op> literal comparisons with min/max
// interpolation.
func rangeSelectivity(x *sqlparser.BinaryExpr, s *Scan) float64 {
	cs := columnStats(x.L, s)
	lit := constValue(x.R)
	op := x.Op
	if cs == nil || lit == nil {
		// Try the mirrored form literal <op> col.
		cs = columnStats(x.R, s)
		lit = constValue(x.L)
		if cs == nil || lit == nil {
			return 1.0 / 3
		}
		switch op {
		case sqlparser.OpLt:
			op = sqlparser.OpGt
		case sqlparser.OpLe:
			op = sqlparser.OpGe
		case sqlparser.OpGt:
			op = sqlparser.OpLt
		case sqlparser.OpGe:
			op = sqlparser.OpLe
		}
	}
	if cs.Min.IsNull() || cs.Max.IsNull() {
		return 1.0 / 3
	}
	lo, hi := cs.Min.Float(), cs.Max.Float()
	if cs.Min.T == sqltypes.TypeString || lit.T == sqltypes.TypeString {
		// No interpolation for strings — on either side: a string literal
		// compared against numeric bounds would silently coerce to 0 via
		// Float() and pin the selectivity to an endpoint.
		return 1.0 / 3
	}
	v := lit.Float()
	if hi <= lo {
		return 0.5
	}
	frac := (v - lo) / (hi - lo)
	frac = clamp01(frac)
	switch op {
	case sqlparser.OpLt, sqlparser.OpLe:
		return math.Max(frac, 0.001)
	case sqlparser.OpGt, sqlparser.OpGe:
		return math.Max(1-frac, 0.001)
	}
	return 1.0 / 3
}

// fraction estimates the fraction of values in [lo, hi]. Interpolation is
// numeric only: string-typed column stats *and* string-typed literal
// bounds fall back to the default fraction — Float() on a string value is
// 0, so interpolating a string bound against numeric stats would silently
// collapse the range onto the column minimum.
func fraction(cs *engine.ColumnStats, lo, hi sqltypes.Value) float64 {
	if cs.Min.IsNull() || cs.Max.IsNull() || cs.Min.T == sqltypes.TypeString ||
		lo.T == sqltypes.TypeString || hi.T == sqltypes.TypeString {
		return 0.25
	}
	mn, mx := cs.Min.Float(), cs.Max.Float()
	if mx <= mn {
		return 0.5
	}
	a := clamp01((lo.Float() - mn) / (mx - mn))
	b := clamp01((hi.Float() - mn) / (mx - mn))
	return math.Max(b-a, 0.001)
}

// columnStats resolves an expression to the scan's column stats if it is a
// plain reference to one of the scan's columns.
func columnStats(e sqlparser.Expr, s *Scan) *engine.ColumnStats {
	cr, ok := e.(*sqlparser.ColumnRef)
	if !ok {
		return nil
	}
	if cr.Table != "" && !strings.EqualFold(cr.Table, s.Alias) {
		return nil
	}
	return s.Stats.Column(cr.Name)
}

// constValue returns the literal value of a constant expression (literals
// and date arithmetic on literals).
func constValue(e sqlparser.Expr) *sqltypes.Value {
	switch x := e.(type) {
	case *sqlparser.Literal:
		v := x.Val
		return &v
	case *sqlparser.BinaryExpr:
		l := constValue(x.L)
		if l == nil {
			return nil
		}
		if iv, ok := x.R.(*sqlparser.IntervalExpr); ok && l.T == sqltypes.TypeDate {
			t := l.Time()
			n := int(iv.N)
			if x.Op == sqlparser.OpSub {
				n = -n
			}
			switch iv.Unit {
			case "YEAR":
				t = t.AddDate(n, 0, 0)
			case "MONTH":
				t = t.AddDate(0, n, 0)
			default:
				t = t.AddDate(0, 0, n)
			}
			v := sqltypes.NewDate(t.Unix() / 86400)
			return &v
		}
		return nil
	default:
		return nil
	}
}

// exprSelectivity estimates the selectivity of a predicate without column
// statistics (used for residual predicates spanning relations, e.g. Q7's
// OR of nation-pair equalities, where per-scan stats do not directly
// apply). Compositional over AND/OR/NOT with textbook leaf defaults.
func exprSelectivity(e sqlparser.Expr) float64 {
	switch x := e.(type) {
	case *sqlparser.BinaryExpr:
		switch x.Op {
		case sqlparser.OpAnd:
			return clamp01(exprSelectivity(x.L) * exprSelectivity(x.R))
		case sqlparser.OpOr:
			return orSelectivity(exprSelectivity(x.L), exprSelectivity(x.R))
		case sqlparser.OpEq:
			return 0.05
		case sqlparser.OpNe:
			return 0.9
		default:
			return 1.0 / 3
		}
	case *sqlparser.BetweenExpr:
		if x.Not {
			return 0.75
		}
		return 0.25
	case *sqlparser.InExpr:
		s := clamp01(0.05 * float64(len(x.List)))
		if x.Not {
			return clamp01(1 - s)
		}
		return s
	case *sqlparser.LikeExpr:
		if x.Not {
			return 0.9
		}
		return 0.1
	case *sqlparser.IsNullExpr:
		if x.Not {
			return 0.95
		}
		return 0.05
	case *sqlparser.NotExpr:
		return clamp01(1 - exprSelectivity(x.E))
	default:
		return 0.5
	}
}

// orSelectivity combines two disjunct selectivities with the textbook
// independence formula s1 + s2 − s1·s2 ([42]). Plain addition saturates —
// two 0.6-selective disjuncts would estimate the whole table and distort
// join ordering — while inclusion-exclusion stays strictly below 1 for
// non-certain inputs.
func orSelectivity(s1, s2 float64) float64 {
	s1, s2 = clamp01(s1), clamp01(s2)
	return clamp01(s1 + s2 - s1*s2)
}

func clamp01(f float64) float64 {
	if f < 0 {
		return 0
	}
	if f > 1 {
		return 1
	}
	return f
}

// applyCardFeedback substitutes observed cardinalities into a logical
// plan before annotation: any subtree whose logical signature (see
// logicalSig) matches a feedback key takes the observed row count as its
// estimate, and every ancestor join re-derives its estimate from the
// corrected inputs. Feedback keys are recorded at materialization
// barriers (observeMaterialized), so during a mid-query suffix
// re-optimization the annotator costs the unexecuted remainder with
// actuals instead of the estimates that just proved wrong. Matching is
// best-effort — a re-ordered join tree may contain none of the observed
// subtrees, in which case only the scan-level corrections (and the
// refreshed catalog statistics) apply. Returns how many subtrees were
// overridden.
func applyCardFeedback(op Op, fb map[string]float64) int {
	if len(fb) == 0 {
		return 0
	}
	n := 0
	switch x := op.(type) {
	case *Scan:
		if rows, ok := fb[logicalSig(x, nil)]; ok && finiteCard(rows) {
			x.est = math.Max(rows, 1)
			n++
		}
	case *Join:
		n += applyCardFeedback(x.L, fb)
		n += applyCardFeedback(x.R, fb)
		est := estimateJoin(x.L, x.R, x.Keys)
		for _, res := range x.Residual {
			est *= exprSelectivity(res)
		}
		x.est = math.Max(est, 1)
		if rows, ok := fb[logicalSig(x, nil)]; ok && finiteCard(rows) {
			x.est = math.Max(rows, 1)
			n++
		}
	case *Final:
		n += applyCardFeedback(x.In, fb)
	}
	return n
}

// finiteCard rejects non-finite observed cardinalities before they enter
// an estimate: math.Max(NaN, 1) is NaN, so a single poisoned feedback
// value would otherwise propagate through every ancestor join's
// re-derived estimate and from there into movement costs.
func finiteCard(v float64) bool {
	return !math.IsNaN(v) && !math.IsInf(v, 0)
}

// estimateJoin estimates equi-join output with per-key distinct counts:
// |L||R| / prod over keys of max(d_L, d_R), capped at the cross product.
func estimateJoin(l, r Op, keys []JoinKey) float64 {
	if len(keys) == 0 {
		return l.Est() * r.Est()
	}
	out := l.Est() * r.Est()
	for _, k := range keys {
		dl := distinctOf(l, k.L)
		dr := distinctOf(r, k.R)
		d := math.Max(dl, dr)
		if d < 1 {
			d = 1
		}
		out /= d
	}
	return math.Max(out, 1)
}

// distinctOf estimates the distinct count of a key column at an operator's
// output: the base column distinct, capped by the operator's cardinality.
func distinctOf(op Op, cr *sqlparser.ColumnRef) float64 {
	base := baseDistinct(op, cr)
	return math.Min(base, math.Max(op.Est(), 1))
}

func baseDistinct(op Op, cr *sqlparser.ColumnRef) float64 {
	switch o := op.(type) {
	case *Scan:
		if cr.Table != "" && !strings.EqualFold(cr.Table, o.Alias) {
			return math.Inf(1)
		}
		if cs := o.Stats.Column(cr.Name); cs != nil && cs.Distinct > 0 {
			return float64(cs.Distinct)
		}
		return math.Max(float64(o.Stats.RowCount), 1)
	case *Join:
		l := baseDistinct(o.L, cr)
		r := baseDistinct(o.R, cr)
		return math.Min(l, r)
	case *Final:
		return baseDistinct(o.In, cr)
	case *Placeholder:
		return o.Est()
	default:
		return math.Inf(1)
	}
}
