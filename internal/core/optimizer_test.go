package core

import (
	"context"
	"fmt"
	"math"
	"strings"
	"sync"
	"testing"

	"xdb/internal/engine"
	"xdb/internal/sqlparser"
	"xdb/internal/sqltypes"
)

// newTestCatalog builds a global catalog with synthetic stats, no live
// engines — for unit tests of the optimizer pieces.
func newTestCatalog() *Catalog {
	c := NewCatalog()
	add := func(name, node string, rows int64, cols ...sqltypes.Column) {
		schema := sqltypes.NewSchema(cols...)
		stats := &engine.TableStats{RowCount: rows, AvgRowBytes: 40}
		for _, col := range cols {
			distinct := rows
			if col.Type == sqltypes.TypeString {
				distinct = rows / 10
			}
			if distinct < 1 {
				distinct = 1
			}
			cs := engine.ColumnStats{Name: col.Name, Distinct: distinct}
			if col.Type == sqltypes.TypeInt {
				cs.Min, cs.Max = sqltypes.NewInt(0), sqltypes.NewInt(rows)
			}
			if col.Type == sqltypes.TypeDate {
				cs.Min = sqltypes.DateFromYMD(1992, 1, 1)
				cs.Max = sqltypes.DateFromYMD(1998, 12, 31)
			}
			stats.Columns = append(stats.Columns, cs)
		}
		c.Put(&TableInfo{Name: name, Node: node, Schema: schema, Stats: stats})
	}
	icol := func(n string) sqltypes.Column { return sqltypes.Column{Name: n, Type: sqltypes.TypeInt} }
	scol := func(n string) sqltypes.Column { return sqltypes.Column{Name: n, Type: sqltypes.TypeString} }
	dcol := func(n string) sqltypes.Column { return sqltypes.Column{Name: n, Type: sqltypes.TypeDate} }

	add("small", "db1", 100, icol("s_id"), scol("s_name"))
	add("medium", "db2", 10_000, icol("m_id"), icol("m_sid"), scol("m_tag"), dcol("m_date"))
	add("large", "db3", 1_000_000, icol("l_id"), icol("l_mid"), scol("l_flag"), dcol("l_date"))
	return c
}

func analyze(t *testing.T, c *Catalog, sql string) (*builder, []sqlparser.Expr, *sqlparser.Select) {
	t.Helper()
	sel, err := sqlparser.ParseSelect(sql)
	if err != nil {
		t.Fatal(err)
	}
	b, conjs, canon, err := buildLogical(c, sel)
	if err != nil {
		t.Fatal(err)
	}
	return b, conjs, canon
}

func TestBuildLogicalResolution(t *testing.T) {
	c := newTestCatalog()
	b, conjs, canon := analyze(t, c, `
		SELECT s.s_name, COUNT(*) FROM small s, medium m
		WHERE s.s_id = m.m_sid AND m.m_tag = 'x' GROUP BY s.s_name`)
	if len(b.order) != 2 {
		t.Fatalf("relations = %v", b.order)
	}
	// The single-table predicate is pushed into the medium scan.
	m := b.aliases["m"]
	if m.Filter == nil || !strings.Contains(m.Filter.String(), "m_tag") {
		t.Errorf("filter not pushed: %v", m.Filter)
	}
	// The join conjunct stays global.
	if len(conjs) != 1 {
		t.Fatalf("join conjuncts = %v", conjs)
	}
	// Canonicalization qualified the unqualified COUNT(*) context columns.
	if !strings.Contains(canon.String(), "s.s_name") {
		t.Errorf("canon = %s", canon)
	}
}

func TestBuildLogicalUnqualifiedResolution(t *testing.T) {
	c := newTestCatalog()
	_, _, canon := analyze(t, c, "SELECT s_name FROM small, medium WHERE s_id = m_sid")
	// Unqualified names resolve to the owning relation's alias.
	if !strings.Contains(canon.String(), "small.s_name") {
		t.Errorf("canon = %s", canon)
	}
	if !strings.Contains(canon.String(), "small.s_id = medium.m_sid") {
		t.Errorf("canon = %s", canon)
	}
}

func TestBuildLogicalErrors(t *testing.T) {
	c := newTestCatalog()
	cases := []string{
		"SELECT x FROM nosuch",
		"SELECT nosuch FROM small",
		"SELECT s.nosuch FROM small s",
		"SELECT s_id FROM small a, small b",  // ambiguous s_id
		"SELECT s_id FROM small a, small a",  // duplicate alias
		"SELECT OTHER.s_id FROM OTHER.small", // wrong DB qualifier
		"SELECT z.s_id FROM small s",         // unknown alias
	}
	for _, q := range cases {
		sel, err := sqlparser.ParseSelect(q)
		if err != nil {
			t.Fatalf("parse %q: %v", q, err)
		}
		if _, _, _, err := buildLogical(c, sel); err == nil {
			t.Errorf("buildLogical(%q) succeeded, want error", q)
		}
	}
}

func TestProjectionPushdownPrunesColumns(t *testing.T) {
	c := newTestCatalog()
	b, _, _ := analyze(t, c, "SELECT m.m_tag FROM medium m WHERE m.m_id > 5")
	m := b.aliases["m"]
	if len(m.Cols) != 2 { // m_tag + m_id (filter)
		t.Errorf("pruned cols = %v", m.Cols)
	}
	for _, col := range m.Cols {
		if col != "m_tag" && col != "m_id" {
			t.Errorf("unexpected column kept: %s", col)
		}
	}
}

func TestStarExpansion(t *testing.T) {
	c := newTestCatalog()
	b, _, canon := analyze(t, c, "SELECT * FROM small s, medium m WHERE s.s_id = m.m_sid")
	if len(canon.Projections) != 2+4 {
		t.Fatalf("projections = %d", len(canon.Projections))
	}
	// All columns kept on both scans.
	if len(b.aliases["s"].Cols) != 2 || len(b.aliases["m"].Cols) != 4 {
		t.Errorf("cols = %v / %v", b.aliases["s"].Cols, b.aliases["m"].Cols)
	}
}

func TestEstimateScanSelectivity(t *testing.T) {
	c := newTestCatalog()
	// Equality on an integer key: 1/distinct.
	b, _, _ := analyze(t, c, "SELECT m_id FROM medium WHERE m_id = 7")
	if est := b.aliases["medium"].Est(); est > 2 {
		t.Errorf("eq estimate = %v, want ~1", est)
	}
	// Range with min/max interpolation: dates span 1992..1998, cutting at
	// 1995-07 keeps roughly half.
	b, _, _ = analyze(t, c, "SELECT m_id FROM medium WHERE m_date < DATE '1995-07-01'")
	est := b.aliases["medium"].Est()
	if est < 3000 || est > 7000 {
		t.Errorf("range estimate = %v, want ~5000", est)
	}
	// BETWEEN one year of seven.
	b, _, _ = analyze(t, c, "SELECT m_id FROM medium WHERE m_date BETWEEN DATE '1994-01-01' AND DATE '1994-12-31'")
	est = b.aliases["medium"].Est()
	if est < 500 || est > 3000 {
		t.Errorf("between estimate = %v, want ~1400", est)
	}
	// Interval arithmetic folds into constants for estimation.
	b, _, _ = analyze(t, c, "SELECT m_id FROM medium WHERE m_date < DATE '1994-07-01' + INTERVAL '1' YEAR")
	est2 := b.aliases["medium"].Est()
	if math.Abs(est2-est) < 1 {
		t.Logf("interval estimate %v (plain %v)", est2, est)
	}
	if est2 < 3000 || est2 > 7000 {
		t.Errorf("interval range estimate = %v, want ~5000", est2)
	}
}

func TestEstimateJoinFKShape(t *testing.T) {
	c := newTestCatalog()
	b, conjs, _ := analyze(t, c, "SELECT s.s_id FROM small s, medium m WHERE s.s_id = m.m_sid")
	joined, err := orderJoins(b, conjs, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// FK join small(100) x medium(10k) on s_id: |L||R|/max(d) = 100*10k/10k = 100... or
	// with m_sid distinct 10k -> ~100.
	est := joined.Est()
	if est < 50 || est > 20000 {
		t.Errorf("join estimate = %v", est)
	}
}

func TestOrderJoinsGreedySmallestFirst(t *testing.T) {
	c := newTestCatalog()
	b, conjs, _ := analyze(t, c, `
		SELECT s.s_id FROM large l, medium m, small s
		WHERE l.l_mid = m.m_id AND m.m_sid = s.s_id`)
	joined, err := orderJoins(b, conjs, Options{})
	if err != nil {
		t.Fatal(err)
	}
	j, ok := joined.(*Join)
	if !ok {
		t.Fatalf("got %T", joined)
	}
	// Left-deep: the deepest left must be the smallest relation (small).
	deepest := j.L
	for {
		inner, ok := deepest.(*Join)
		if !ok {
			break
		}
		deepest = inner.L
	}
	if s, ok := deepest.(*Scan); !ok || s.Table != "small" {
		t.Errorf("deepest-left relation = %v, want small", OpString(deepest))
	}
}

func TestOrderJoinsNoReorder(t *testing.T) {
	c := newTestCatalog()
	b, conjs, _ := analyze(t, c, `
		SELECT s.s_id FROM large l, medium m, small s
		WHERE l.l_mid = m.m_id AND m.m_sid = s.s_id`)
	joined, err := orderJoins(b, conjs, Options{NoJoinReorder: true})
	if err != nil {
		t.Fatal(err)
	}
	// Syntactic order: ((large x medium) x small).
	j := joined.(*Join)
	deepest := j.L
	for {
		inner, ok := deepest.(*Join)
		if !ok {
			break
		}
		deepest = inner.L
	}
	if s, ok := deepest.(*Scan); !ok || s.Table != "large" {
		t.Errorf("deepest-left = %v, want large (syntactic order)", OpString(deepest))
	}
}

func TestOrderJoinsResidualPredicates(t *testing.T) {
	c := newTestCatalog()
	b, conjs, _ := analyze(t, c, `
		SELECT s.s_id FROM small s, medium m
		WHERE s.s_id = m.m_sid AND (s.s_name = 'a' OR m.m_tag = 'b')`)
	joined, err := orderJoins(b, conjs, Options{})
	if err != nil {
		t.Fatal(err)
	}
	j := joined.(*Join)
	if len(j.Keys) != 1 || len(j.Residual) != 1 {
		t.Errorf("keys=%d residuals=%d", len(j.Keys), len(j.Residual))
	}
}

// fakeCoster implements Coster without live engines. Probe counting is
// locked: annotation fans candidate probes out concurrently.
type fakeCoster struct {
	nodes  []string
	mu     sync.Mutex
	rounds int
	// linkFactors keyed "from->to"
	linkFactors map[string]float64
}

func (f *fakeCoster) probeCount() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.rounds
}

func (f *fakeCoster) CostOperator(_ context.Context, node string, kind engine.CostKind, l, r, o float64) (float64, error) {
	f.mu.Lock()
	f.rounds++
	f.mu.Unlock()
	switch kind {
	case engine.CostJoin:
		small, big := l, r
		if small > big {
			small, big = big, small
		}
		return small*1.5 + big*1.0 + o*0.5, nil
	case engine.CostJoinStream:
		return r*1.5 + l*1.0 + o*0.5, nil
	case engine.CostScan:
		return l, nil
	default:
		return l, nil
	}
}

func (f *fakeCoster) AllNodes() []string { return f.nodes }

func (f *fakeCoster) Healthy(string) bool { return true }

func (f *fakeCoster) LinkFactor(from, to string) float64 {
	if v, ok := f.linkFactors[from+"->"+to]; ok {
		return v
	}
	return 1
}

func buildAnnotatedPlan(t *testing.T, sql string, opts Options) (Op, *Annotation, *builder) {
	t.Helper()
	c := newTestCatalog()
	sel, err := sqlparser.ParseSelect(sql)
	if err != nil {
		t.Fatal(err)
	}
	b, conjs, canon, err := buildLogical(c, sel)
	if err != nil {
		t.Fatal(err)
	}
	joined, err := orderJoins(b, conjs, opts)
	if err != nil {
		t.Fatal(err)
	}
	root := &Final{In: joined, Sel: canon}
	coster := &fakeCoster{nodes: []string{"db1", "db2", "db3"}}
	ann, err := annotate(context.Background(), root, coster, opts)
	if err != nil {
		t.Fatal(err)
	}
	return root, ann, b
}

func TestAnnotateRules(t *testing.T) {
	root, ann, b := buildAnnotatedPlan(t,
		"SELECT s.s_name, COUNT(*) FROM small s, medium m WHERE s.s_id = m.m_sid GROUP BY s.s_name", Options{})
	// Rule 1: scans on their homes.
	if ann.Node[b.aliases["s"]] != "db1" || ann.Node[b.aliases["m"]] != "db2" {
		t.Errorf("scan annotations: %v / %v", ann.Node[b.aliases["s"]], ann.Node[b.aliases["m"]])
	}
	final := root.(*Final)
	join := final.In.(*Join)
	// Rule 4: join placed on one of its inputs' nodes.
	if n := ann.Node[join]; n != "db1" && n != "db2" {
		t.Errorf("join placed on %s", n)
	}
	// Rule 2: Final inherits the join's node.
	if ann.Node[final] != ann.Node[join] {
		t.Errorf("final on %s, join on %s", ann.Node[final], ann.Node[join])
	}
	// The remote child edge carries a movement.
	var remote Op = join.L
	if ann.Node[join.L] == ann.Node[join] {
		remote = join.R
	}
	if mv := ann.Move[remote]; mv != MoveImplicit && mv != MoveExplicit {
		t.Errorf("remote edge movement = %v", mv)
	}
	if ann.ConsultRounds == 0 {
		t.Error("no consulting rounds recorded")
	}
}

func TestAnnotateRule3SameNode(t *testing.T) {
	c := newTestCatalog()
	// Two relations on db2: join inherits without consulting.
	c.Put(&TableInfo{
		Name: "medium2", Node: "db2",
		Schema: sqltypes.NewSchema(sqltypes.Column{Name: "x_id", Type: sqltypes.TypeInt}),
		Stats:  &engine.TableStats{RowCount: 50, Columns: []engine.ColumnStats{{Name: "x_id", Distinct: 50}}},
	})
	sel, _ := sqlparser.ParseSelect("SELECT m.m_id FROM medium m, medium2 x WHERE m.m_id = x.x_id")
	b, conjs, canon, err := buildLogical(c, sel)
	if err != nil {
		t.Fatal(err)
	}
	joined, err := orderJoins(b, conjs, Options{})
	if err != nil {
		t.Fatal(err)
	}
	coster := &fakeCoster{nodes: []string{"db1", "db2"}}
	ann, err := annotate(context.Background(), &Final{In: joined, Sel: canon}, coster, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if n := coster.probeCount(); n != 0 {
		t.Errorf("co-located join consulted %d times, want 0", n)
	}
	if ann.Node[joined] != "db2" {
		t.Errorf("join on %s, want db2", ann.Node[joined])
	}
}

func TestAnnotateForcedMovement(t *testing.T) {
	for _, force := range []Movement{MoveImplicit, MoveExplicit} {
		root, ann, _ := buildAnnotatedPlan(t,
			"SELECT s.s_id FROM small s, medium m WHERE s.s_id = m.m_sid",
			Options{ForceMovement: force})
		join := root.(*Final).In.(*Join)
		for _, child := range []Op{join.L, join.R} {
			if ann.Node[child] == ann.Node[join] {
				continue
			}
			if mv := ann.Move[child]; mv != force {
				t.Errorf("force=%v: edge movement = %v", force, mv)
			}
		}
	}
}

func TestAnnotateFullCandidateSetConsultsMore(t *testing.T) {
	sql := "SELECT s.s_id FROM small s, medium m, large l WHERE s.s_id = m.m_sid AND m.m_id = l.l_mid"
	_, prunedAnn, _ := buildAnnotatedPlan(t, sql, Options{})
	_, fullAnn, _ := buildAnnotatedPlan(t, sql, Options{FullCandidateSet: true})
	if fullAnn.ConsultRounds <= prunedAnn.ConsultRounds {
		t.Errorf("full set rounds (%d) <= pruned rounds (%d)",
			fullAnn.ConsultRounds, prunedAnn.ConsultRounds)
	}
}

func TestLinkFactorShiftsPlacement(t *testing.T) {
	// With an expensive link into db2, the join should flee to db1's side
	// ... placement candidates are only the two inputs, so the cheap-link
	// side must win when data sizes are comparable.
	c := newTestCatalog()
	c.Put(&TableInfo{
		Name: "peer", Node: "db2",
		Schema: sqltypes.NewSchema(sqltypes.Column{Name: "p_id", Type: sqltypes.TypeInt}),
		Stats: &engine.TableStats{RowCount: 100, AvgRowBytes: 40,
			Columns: []engine.ColumnStats{{Name: "p_id", Distinct: 100}}},
	})
	sel, _ := sqlparser.ParseSelect("SELECT s.s_id FROM small s, peer p WHERE s.s_id = p.p_id")
	b, conjs, canon, err := buildLogical(c, sel)
	if err != nil {
		t.Fatal(err)
	}
	joined, err := orderJoins(b, conjs, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Moving data INTO db2 is 100x more expensive than into db1.
	coster := &fakeCoster{
		nodes:       []string{"db1", "db2"},
		linkFactors: map[string]float64{"db1->db2": 100, "db2->db1": 1},
	}
	ann, err := annotate(context.Background(), &Final{In: joined, Sel: canon}, coster, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got := ann.Node[joined]; got != "db1" {
		t.Errorf("join placed on %s, want db1 (cheap inbound link)", got)
	}
}

func TestFinalizeTaskFusion(t *testing.T) {
	root, ann, b := buildAnnotatedPlan(t, `
		SELECT s.s_name, COUNT(*) FROM small s, medium m, large l
		WHERE s.s_id = m.m_sid AND m.m_id = l.l_mid
		GROUP BY s.s_name`, Options{})
	plan := finalize(root, ann, collectColTypes(b))
	if plan.Root == nil || len(plan.Tasks) < 2 {
		t.Fatalf("plan: %s", plan)
	}
	// The root task is last in post-order and holds the Final.
	if plan.Tasks[len(plan.Tasks)-1] != plan.Root {
		t.Error("root task not last in post-order")
	}
	if _, ok := plan.Root.Root.(*Final); !ok {
		t.Errorf("root task fragment is %T, want *Final", plan.Root.Root)
	}
	// Edges connect distinct nodes and carry estimates.
	for _, e := range plan.Edges {
		if e.From.Node == e.To.Node {
			t.Errorf("edge within one node: %s", e)
		}
		if e.EstRows <= 0 {
			t.Errorf("edge estimate = %v", e.EstRows)
		}
		if e.Placeholder == nil || len(e.Placeholder.Cols) == 0 {
			t.Errorf("edge placeholder missing cols: %s", e)
		}
		if len(e.Placeholder.Types) != len(e.Placeholder.Cols) {
			t.Errorf("placeholder types misaligned")
		}
	}
	// Movements counted consistently.
	i, e := plan.Movements()
	if i+e != len(plan.Edges) {
		t.Errorf("movements %d+%d != %d edges", i, e, len(plan.Edges))
	}
}

func TestRenderIntermediateTask(t *testing.T) {
	root, ann, b := buildAnnotatedPlan(t,
		"SELECT s.s_name FROM small s, medium m WHERE s.s_id = m.m_sid AND m.m_tag = 'x'", Options{})
	plan := finalize(root, ann, collectColTypes(b))
	if len(plan.Tasks) != 2 {
		t.Fatalf("tasks = %d:\n%s", len(plan.Tasks), plan)
	}
	child := plan.Tasks[0]
	sel, err := renderTask(child)
	if err != nil {
		t.Fatal(err)
	}
	sql := sel.String()
	// The child exports mangled column names.
	for _, gid := range child.Root.OutCols() {
		if !strings.Contains(sql, MangleCol(gid)) {
			t.Errorf("child SQL missing export %s:\n%s", MangleCol(gid), sql)
		}
	}
	// Render the root after binding the placeholder.
	for _, e := range plan.Root.Inputs {
		e.Placeholder.Rel = "ft_test"
	}
	rootSel, err := renderTask(plan.Root)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(rootSel.String(), "ft_test") {
		t.Errorf("root SQL does not reference the placeholder relation:\n%s", rootSel)
	}
	// Rendered SQL must re-parse.
	if _, err := sqlparser.ParseSelect(rootSel.String()); err != nil {
		t.Errorf("root SQL does not re-parse: %v\n%s", err, rootSel)
	}
}

func TestRenderUnboundPlaceholderFails(t *testing.T) {
	root, ann, b := buildAnnotatedPlan(t,
		"SELECT s.s_name FROM small s, medium m WHERE s.s_id = m.m_sid", Options{})
	plan := finalize(root, ann, collectColTypes(b))
	if _, err := renderTask(plan.Root); err == nil {
		t.Error("rendering with unbound placeholder succeeded")
	}
}

func TestOpString(t *testing.T) {
	root, _, _ := buildAnnotatedPlan(t,
		"SELECT s.s_name FROM small s, medium m WHERE s.s_id = m.m_sid AND m.m_tag = 'x'", Options{})
	s := OpString(root)
	for _, want := range []string{"Γ", "⋈", "σ", "π"} {
		if !strings.Contains(s, want) {
			t.Errorf("OpString = %q, missing %q", s, want)
		}
	}
}

func TestMangleCol(t *testing.T) {
	if got := MangleCol("n1.n_name"); got != "n1_n_name" {
		t.Errorf("MangleCol = %q", got)
	}
	if MangleCol("A.B") != "a_b" {
		t.Error("MangleCol must lower-case")
	}
}

func TestCatalogLookup(t *testing.T) {
	c := newTestCatalog()
	if _, ok := c.Lookup("SMALL"); !ok {
		t.Error("case-insensitive lookup failed")
	}
	if _, ok := c.Lookup("nosuch"); ok {
		t.Error("phantom table found")
	}
	if len(c.Tables()) != 3 {
		t.Errorf("tables = %d", len(c.Tables()))
	}
}

func TestPlanString(t *testing.T) {
	root, ann, b := buildAnnotatedPlan(t,
		"SELECT s.s_name FROM small s, medium m WHERE s.s_id = m.m_sid", Options{})
	plan := finalize(root, ann, collectColTypes(b))
	out := plan.String()
	if !strings.Contains(out, "t1") || !strings.Contains(out, "-->") {
		t.Errorf("plan string:\n%s", out)
	}
	// Edge String includes movement.
	for _, e := range plan.Edges {
		if !strings.Contains(e.String(), fmt.Sprintf("--%s-->", e.Move)) {
			t.Errorf("edge string %q", e.String())
		}
	}
}
