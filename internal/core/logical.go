// Package core implements the paper's primary contribution: XDB's
// cross-database optimizer and delegation engine.
//
// A cross-database query flows through three optimizer components
// (Sec. IV): the Logical Optimizer (join ordering and
// selection/projection pushdown), the Plan Annotator (operator placement
// and data-movement decisions via Rules 1–4, consulting the underlying
// DBMSes for costs), and the Plan Finalizer (fusing same-placement
// operators into tasks). The result is a delegation plan — a DAG of tasks,
// each an algebraic expression pinned to one DBMS, with edges labelled as
// implicit (pipelined) or explicit (materialized) dataflow. The delegation
// engine (Sec. V) rewrites the plan into vendor-specific DDL — servers,
// foreign tables, views, and CREATE TABLE AS — and hands the client a
// single XDB query whose evaluation triggers the fully decentralized,
// mediator-less execution cascade.
package core

import (
	"fmt"
	"strings"
	"sync"

	"xdb/internal/engine"
	"xdb/internal/sqlparser"
	"xdb/internal/sqltypes"
)

// TableInfo is one entry of XDB's global catalog: a table, its home DBMS,
// its schema, and statistics gathered during the preparation phase.
// Entries are treated as immutable once published — metadata refreshes
// replace the entry rather than mutating it, so concurrent queries each
// plan against a consistent snapshot.
type TableInfo struct {
	Name   string
	Node   string
	Schema *sqltypes.Schema
	Stats  *engine.TableStats
}

// Catalog is XDB's global catalog — the Global-as-a-View union of the
// local schemas (Sec. III). It is safe for concurrent use.
type Catalog struct {
	mu     sync.RWMutex
	tables map[string]*TableInfo
}

// NewCatalog returns an empty global catalog.
func NewCatalog() *Catalog {
	return &Catalog{tables: make(map[string]*TableInfo)}
}

// Put registers or replaces a table entry.
func (c *Catalog) Put(info *TableInfo) {
	c.mu.Lock()
	c.tables[strings.ToLower(info.Name)] = info
	c.mu.Unlock()
}

// Lookup resolves a table name.
func (c *Catalog) Lookup(name string) (*TableInfo, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	t, ok := c.tables[strings.ToLower(name)]
	return t, ok
}

// Tables returns all registered tables.
func (c *Catalog) Tables() []*TableInfo {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]*TableInfo, 0, len(c.tables))
	for _, t := range c.tables {
		out = append(out, t)
	}
	return out
}

// Movement labels a dataflow edge in a delegation plan.
type Movement byte

// The two inter-DBMS dataflow operations of Sec. IV-A.
const (
	// MoveImplicit pipelines the child task's output into the parent via
	// a foreign-table reference.
	MoveImplicit Movement = 'i'
	// MoveExplicit materializes the child task's output as a local table
	// on the parent's DBMS before use.
	MoveExplicit Movement = 'e'
)

// String renders the movement as the paper's i/e edge labels.
func (m Movement) String() string { return string(byte(m)) }

// Op is a node of XDB's logical plan. The plan is a left-deep join tree of
// scans (with pushed-down filters and pruned columns), topped by a Final
// operator holding the query's projection/aggregation/order/limit block.
type Op interface {
	// OutCols returns the ordered global column identities ("alias.col")
	// the operator produces.
	OutCols() []string
	// Est returns the estimated output cardinality.
	Est() float64
	// Width returns the estimated encoded bytes per output row.
	Width() float64
}

// Scan reads one base table. Filter holds the pushed-down single-table
// predicate; Cols the pruned column set (projection pushdown).
type Scan struct {
	Table  string
	Alias  string
	Node   string
	Schema *sqltypes.Schema // base table schema (bare column names)
	Stats  *engine.TableStats
	Cols   []string // pruned bare column names, in schema order
	Filter sqlparser.Expr

	est   float64
	width float64
}

// OutCols implements Op.
func (s *Scan) OutCols() []string {
	out := make([]string, len(s.Cols))
	for i, c := range s.Cols {
		out[i] = s.Alias + "." + c
	}
	return out
}

// Est implements Op.
func (s *Scan) Est() float64 { return s.est }

// Width implements Op.
func (s *Scan) Width() float64 { return s.width }

// JoinKey is one equi-join predicate between the two inputs of a Join.
type JoinKey struct {
	L, R *sqlparser.ColumnRef // qualified; L resolves in the left input
}

// Join is an inner equi join (with optional non-equi residual conjuncts).
type Join struct {
	L, R     Op
	Keys     []JoinKey
	Residual []sqlparser.Expr

	est float64
}

// OutCols implements Op.
func (j *Join) OutCols() []string {
	return append(append([]string{}, j.L.OutCols()...), j.R.OutCols()...)
}

// Est implements Op.
func (j *Join) Est() float64 { return j.est }

// Width implements Op.
func (j *Join) Width() float64 { return j.L.Width() + j.R.Width() }

// Final holds the query's top block: projections, grouping, having,
// ordering, limit. It is always placed with the root join's DBMS (unary
// operators inherit annotations, Rule 2).
type Final struct {
	In  Op
	Sel *sqlparser.Select // canonicalized: all column refs qualified
}

// OutCols implements Op. Final output columns are the user's projection
// names; they are only consumed by the client.
func (f *Final) OutCols() []string {
	out := make([]string, 0, len(f.Sel.Projections))
	for _, p := range f.Sel.Projections {
		if p.Alias != "" {
			out = append(out, p.Alias)
			continue
		}
		if cr, ok := p.Expr.(*sqlparser.ColumnRef); ok {
			out = append(out, cr.Name)
			continue
		}
		out = append(out, p.Expr.String())
	}
	return out
}

// Est implements Op.
func (f *Final) Est() float64 {
	if len(f.Sel.GroupBy) > 0 {
		g := f.In.Est() / 10
		if g < 1 {
			g = 1
		}
		return g
	}
	if sqlparser.HasAggregate(firstProjection(f.Sel)) {
		return 1
	}
	return f.In.Est()
}

// Width implements Op.
func (f *Final) Width() float64 { return float64(9 * len(f.Sel.Projections)) }

func firstProjection(sel *sqlparser.Select) sqlparser.Expr {
	for _, p := range sel.Projections {
		if p.Expr != nil {
			return p.Expr
		}
	}
	return nil
}

// Placeholder stands for the output of another task after plan
// finalization — the "?" of the paper's task notation. It never appears in
// the logical plan before finalization.
type Placeholder struct {
	// ChildTask is the producing task's ID.
	ChildTask int
	// Move is the dataflow operation on the edge.
	Move Movement
	// Cols are the global column identities the child exports.
	Cols []string
	// Types are the column types, aligned with Cols (needed for foreign
	// table DDL).
	Types []sqltypes.Type
	// Rel is the local relation the placeholder resolves to in the
	// parent's rendered SQL — the foreign table (implicit movement) or the
	// materialized table (explicit movement). Set during delegation.
	Rel string
	// RawScan is set by the NoVirtualRelations ablation (A4): the foreign
	// table points directly at the child's base table instead of a
	// virtual relation, so the child task's filter and projection did NOT
	// run remotely — the parent must apply the filter locally, and the
	// full base relation crosses the wire. This is the "undesirable
	// execution" that Sec. V's view-wrapping prevents.
	RawScan *Scan

	est   float64
	width float64
}

// OutCols implements Op.
func (p *Placeholder) OutCols() []string { return p.Cols }

// Est implements Op.
func (p *Placeholder) Est() float64 { return p.est }

// Width implements Op.
func (p *Placeholder) Width() float64 { return p.width }

// OpString renders an operator tree in the paper's compact algebra
// notation, e.g. "⋈(π(σ(C)), ?)".
func OpString(op Op) string {
	switch o := op.(type) {
	case *Scan:
		s := o.Table
		if o.Filter != nil {
			s = "σ(" + s + ")"
		}
		if len(o.Cols) < o.Schema.Len() {
			s = "π(" + s + ")"
		}
		return s
	case *Join:
		return "⋈(" + OpString(o.L) + ", " + OpString(o.R) + ")"
	case *Final:
		return "Γ(" + OpString(o.In) + ")"
	case *Placeholder:
		return "?"
	default:
		return fmt.Sprintf("%T", op)
	}
}
