package core

import (
	"fmt"
	"strings"

	"xdb/internal/sqlparser"
)

// builder turns a parsed cross-database SELECT into the pre-join logical
// pieces: resolved scans with pushed-down filters and pruned columns, the
// join-predicate pool, and the canonicalized top block.
type builder struct {
	catalog *Catalog
	// aliases maps lower-cased alias -> scan.
	aliases map[string]*Scan
	order   []string // alias order of appearance
	// projAliases are the projection aliases visible to GROUP BY/ORDER BY.
	projAliases map[string]bool
}

// buildLogical resolves the query against the global catalog and returns
// the scans, the multi-table conjuncts, and the canonicalized statement.
func buildLogical(catalog *Catalog, sel *sqlparser.Select) (*builder, []sqlparser.Expr, *sqlparser.Select, error) {
	b := &builder{
		catalog:     catalog,
		aliases:     map[string]*Scan{},
		projAliases: map[string]bool{},
	}
	if len(sel.From) == 0 {
		return nil, nil, nil, fmt.Errorf("core: cross-database query requires a FROM clause")
	}
	for _, p := range sel.Projections {
		if p.Alias != "" {
			b.projAliases[strings.ToLower(p.Alias)] = true
		}
	}

	// Resolve FROM entries against the global catalog. A DB qualifier, if
	// present, must match the table's registered home node.
	for _, ref := range sel.From {
		info, ok := catalog.Lookup(ref.Name)
		if !ok {
			return nil, nil, nil, fmt.Errorf("core: unknown table %q in global catalog", ref.Name)
		}
		if ref.DB != "" && !strings.EqualFold(ref.DB, info.Node) {
			return nil, nil, nil, fmt.Errorf("core: table %s is on %s, not %s", ref.Name, info.Node, ref.DB)
		}
		alias := strings.ToLower(ref.EffectiveAlias())
		if _, dup := b.aliases[alias]; dup {
			return nil, nil, nil, fmt.Errorf("core: duplicate relation alias %q", ref.EffectiveAlias())
		}
		scan := &Scan{
			Table:  info.Name,
			Alias:  ref.EffectiveAlias(),
			Node:   info.Node,
			Schema: info.Schema,
			Stats:  info.Stats,
		}
		b.aliases[alias] = scan
		b.order = append(b.order, alias)
	}

	// Canonicalize: expand stars, then qualify every column reference
	// with its relation alias (projection aliases in GROUP BY/ORDER
	// BY/HAVING stay bare).
	canon := cloneSelect(sel)
	if err := b.expandStars(canon); err != nil {
		return nil, nil, nil, err
	}
	if err := b.canonicalizeSelect(canon); err != nil {
		return nil, nil, nil, err
	}

	// Classify WHERE conjuncts: single-table predicates are pushed into
	// their scan (selection pushdown); the rest feed join planning.
	var joinConjs []sqlparser.Expr
	for _, conj := range sqlparser.SplitConjuncts(canon.Where) {
		touched := b.aliasesIn(conj)
		if len(touched) == 1 {
			s := b.aliases[touched[0]]
			if s.Filter == nil {
				s.Filter = conj
			} else {
				s.Filter = &sqlparser.BinaryExpr{Op: sqlparser.OpAnd, L: s.Filter, R: conj}
			}
			continue
		}
		joinConjs = append(joinConjs, conj)
	}

	// Projection pushdown: each scan keeps only the columns referenced
	// anywhere in the query.
	needed := map[string]map[string]bool{}
	note := func(e sqlparser.Expr) {
		for _, cr := range sqlparser.ColumnsIn(e) {
			if cr.Table == "" {
				continue // projection-alias reference
			}
			a := strings.ToLower(cr.Table)
			if needed[a] == nil {
				needed[a] = map[string]bool{}
			}
			needed[a][strings.ToLower(cr.Name)] = true
		}
	}
	for _, p := range canon.Projections {
		note(p.Expr)
	}
	note(canon.Where)
	for _, g := range canon.GroupBy {
		note(g)
	}
	note(canon.Having)
	for _, o := range canon.OrderBy {
		note(o.Expr)
	}
	for alias, scan := range b.aliases {
		cols := needed[alias]
		for _, c := range scan.Schema.Columns {
			if cols[strings.ToLower(c.Name)] {
				scan.Cols = append(scan.Cols, c.Name)
			}
		}
		if len(scan.Cols) == 0 {
			// Keep at least one column so the relation renders.
			scan.Cols = []string{scan.Schema.Columns[0].Name}
		}
	}

	// Estimate scan cardinalities and widths.
	for _, scan := range b.aliases {
		scan.est = estimateScan(scan)
		scan.width = estimateWidth(scan)
	}
	return b, joinConjs, canon, nil
}

// expandStars replaces * and t.* projections with explicit column
// references in FROM order.
func (b *builder) expandStars(sel *sqlparser.Select) error {
	var out []sqlparser.SelectExpr
	for _, p := range sel.Projections {
		if !p.Star {
			out = append(out, p)
			continue
		}
		matched := false
		for _, a := range b.order {
			s := b.aliases[a]
			if p.StarTable != "" && !strings.EqualFold(p.StarTable, s.Alias) {
				continue
			}
			matched = true
			for _, c := range s.Schema.Columns {
				out = append(out, sqlparser.SelectExpr{
					Expr: &sqlparser.ColumnRef{Table: s.Alias, Name: c.Name},
				})
			}
		}
		if !matched {
			return fmt.Errorf("core: %s.* matches no relation", p.StarTable)
		}
	}
	sel.Projections = out
	return nil
}

// aliasesIn returns the distinct relation aliases referenced by an
// expression (lower-cased, sorted by first appearance in the query).
func (b *builder) aliasesIn(e sqlparser.Expr) []string {
	seen := map[string]bool{}
	for _, cr := range sqlparser.ColumnsIn(e) {
		if cr.Table == "" {
			continue
		}
		seen[strings.ToLower(cr.Table)] = true
	}
	var out []string
	for _, a := range b.order {
		if seen[a] {
			out = append(out, a)
		}
	}
	return out
}

// canonicalizeSelect qualifies every bare column reference in place.
func (b *builder) canonicalizeSelect(sel *sqlparser.Select) error {
	var err error
	fix := func(e sqlparser.Expr, allowProjAlias bool) {
		sqlparser.WalkExpr(e, func(x sqlparser.Expr) {
			cr, ok := x.(*sqlparser.ColumnRef)
			if !ok || err != nil {
				return
			}
			if cr.Table != "" {
				a := strings.ToLower(cr.Table)
				s, ok := b.aliases[a]
				if !ok {
					err = fmt.Errorf("core: unknown relation alias %q", cr.Table)
					return
				}
				if !s.Schema.HasColumn("", cr.Name) {
					err = fmt.Errorf("core: relation %s has no column %q", cr.Table, cr.Name)
					return
				}
				cr.Table = s.Alias
				return
			}
			if allowProjAlias && b.projAliases[strings.ToLower(cr.Name)] {
				return
			}
			var found *Scan
			for _, a := range b.order {
				s := b.aliases[a]
				if s.Schema.HasColumn("", cr.Name) {
					if found != nil {
						err = fmt.Errorf("core: ambiguous column %q (in %s and %s)", cr.Name, found.Alias, s.Alias)
						return
					}
					found = s
				}
			}
			if found == nil {
				if b.projAliases[strings.ToLower(cr.Name)] {
					return // projection alias used in an expression
				}
				err = fmt.Errorf("core: unknown column %q", cr.Name)
				return
			}
			cr.Table = found.Alias
		})
	}
	for i := range sel.Projections {
		fix(sel.Projections[i].Expr, false)
	}
	fix(sel.Where, false)
	for i := range sel.GroupBy {
		fix(sel.GroupBy[i], true)
	}
	fix(sel.Having, true)
	for i := range sel.OrderBy {
		fix(sel.OrderBy[i].Expr, true)
	}
	return err
}

// cloneSelect deep-copies the parts of a SELECT the optimizer mutates.
func cloneSelect(sel *sqlparser.Select) *sqlparser.Select {
	out := &sqlparser.Select{
		Distinct: sel.Distinct,
		Limit:    sel.Limit,
	}
	for _, p := range sel.Projections {
		cp := sqlparser.SelectExpr{Alias: p.Alias, Star: p.Star, StarTable: p.StarTable}
		if p.Expr != nil {
			cp.Expr = sqlparser.CloneExpr(p.Expr)
		}
		out.Projections = append(out.Projections, cp)
	}
	out.From = append(out.From, sel.From...)
	if sel.Where != nil {
		out.Where = sqlparser.CloneExpr(sel.Where)
	}
	for _, g := range sel.GroupBy {
		out.GroupBy = append(out.GroupBy, sqlparser.CloneExpr(g))
	}
	if sel.Having != nil {
		out.Having = sqlparser.CloneExpr(sel.Having)
	}
	for _, o := range sel.OrderBy {
		out.OrderBy = append(out.OrderBy, sqlparser.OrderItem{Expr: sqlparser.CloneExpr(o.Expr), Desc: o.Desc})
	}
	return out
}
