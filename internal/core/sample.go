package core

import (
	"context"
	"fmt"
	"math"
	"strconv"
	"strings"
	"sync"
	"time"

	"xdb/internal/engine"
	"xdb/internal/obs"
)

// Proactive sampling-based estimate refinement: the optimistic half of the
// cardinality feedback loop. Re-optimization (reopt.go) corrects a
// misestimate after a materialization barrier disproved it — after the
// wrong stage already shipped. Sampling corrects it before anything
// ships: when a query spans DBMSes (so a Rule-4 placement is coming) and
// a relation's estimate is low-confidence, the optimizer issues a
// bounded-sample probe — scan at most Options.SampleLimit rows, count the
// predicate matches, sketch per-column statistics — against the
// relation's home DBMS, and substitutes the observed truth into the same
// machinery the barriers feed: the scan's estimate and statistics for
// this query, and a statsOverride for every subsequent one.
//
// A probe is low-confidence-triggered, never unconditional:
//
//	(a) the relation has no column statistics at all;
//	(b) a prior statsOverride marks the home DBMS's reported statistics
//	    as known-stale — re-verify them for the price of one bounded
//	    scan instead of trusting either side blindly;
//	(c) the two cheapest relations' estimated shipping volumes are
//	    within Options.SampleTrigger of each other — the movement
//	    decision is ambiguous, and a wrong pick ships the wrong side;
//	(d) the relation's reported row count is at most the sample limit —
//	    the probe will scan the whole relation (as reported), so exact
//	    truth costs no more than the estimate it verifies, and a
//	    deflated report is discovered rather than believed.
//
// Probes run through the same control-plane discipline as consultations:
// concurrent fan-out (SerialAnnotation restores sequential order),
// per-node semaphores, breaker-aware (an open breaker skips the probe —
// it never fires against a node that cannot answer), and degraded to the
// plain estimate on any fault. Sampling never fails a query.

// DefaultSampleTrigger is the shipping-volume ratio under which a
// movement decision counts as ambiguous (trigger c) when
// Options.SampleTrigger is unset.
const DefaultSampleTrigger = 2.0

// sampleTrigger resolves the configured ambiguity threshold.
func (s *System) sampleTrigger() float64 {
	if s.opts.SampleTrigger > 0 {
		return s.opts.SampleTrigger
	}
	return DefaultSampleTrigger
}

// SampleRelation issues one bounded-sample probe against a relation's
// home DBMS. An open breaker fails fast without a round trip; actual
// probe outcomes feed the breaker. The probe takes one unit of the
// node's control-plane budget, like any consultation.
func (s *System) SampleRelation(ctx context.Context, node, table, alias, filter string, limit int64) (*engine.SampleResult, error) {
	c, ok := s.connectors[node]
	if !ok {
		return nil, fmt.Errorf("core: sample probe for unknown node %q", node)
	}
	if err := s.health.allow(node); err != nil {
		return nil, err
	}
	release, err := s.nodes.acquire(ctx, node, 1)
	if err != nil {
		return nil, err
	}
	defer release()
	rctx, cancel := s.reqCtx(ctx)
	defer cancel()
	res, err := c.Sample(rctx, table, alias, filter, limit)
	s.health.record(node, err)
	return res, err
}

// sampleRefine runs the sampling pre-pass over the query's scans and
// returns the number of probes considered (including skipped and failed
// ones — the Breakdown counts decisions, the metrics split outcomes).
// It mutates the triggered scans' estimates and statistics in place, so
// join ordering and annotation both see the refined cardinalities.
func (s *System) sampleRefine(ctx context.Context, scans []*Scan) int {
	limit := int64(s.opts.SampleLimit)
	cands := s.sampleCandidates(scans, limit)
	if len(cands) == 0 {
		return 0
	}
	if s.opts.SerialAnnotation || len(cands) < 2 {
		for _, sc := range cands {
			s.sampleScan(ctx, sc, limit)
		}
		return len(cands)
	}
	var wg sync.WaitGroup
	for _, sc := range cands {
		wg.Add(1)
		go func(sc *Scan) {
			defer wg.Done()
			s.sampleScan(ctx, sc, limit)
		}(sc)
	}
	wg.Wait()
	return len(cands)
}

// sampleCandidates applies the low-confidence triggers. Sampling only
// pays off ahead of a cross-database decision: a single-relation or
// single-DBMS query has no Rule-4 placement to get wrong, so it is never
// probed.
func (s *System) sampleCandidates(scans []*Scan, limit int64) []*Scan {
	if len(scans) < 2 {
		return nil
	}
	nodes := map[string]bool{}
	for _, sc := range scans {
		nodes[sc.Node] = true
	}
	if len(nodes) < 2 {
		return nil
	}

	// Trigger (c): rank the relations by estimated shipping volume; when
	// the two cheapest are within the trigger ratio, the movement
	// decision between them is ambiguous and both get verified.
	i1, i2 := -1, -1
	for i, sc := range scans {
		v := moveCost(sc, 1)
		switch {
		case i1 < 0 || v < moveCost(scans[i1], 1):
			i1, i2 = i, i1
		case i2 < 0 || v < moveCost(scans[i2], 1):
			i2 = i
		}
	}
	ambiguous := false
	if i1 >= 0 && i2 >= 0 {
		lo, hi := moveCost(scans[i1], 1), moveCost(scans[i2], 1)
		ambiguous = lo > 0 && hi/lo < s.sampleTrigger()
	}

	var out []*Scan
	for i, sc := range scans {
		switch {
		case sc.Stats == nil:
			continue // nothing reported at all; metadata gathering failed upstream
		case len(sc.Stats.Columns) == 0: // trigger (a)
		case s.hasStatsOverride(sc.Table): // trigger (b)
		case sc.Stats.RowCount <= limit: // trigger (d)
		case ambiguous && (i == i1 || i == i2): // trigger (c)
		default:
			continue
		}
		out = append(out, sc)
	}
	return out
}

// hasStatsOverride reports whether a cardinality-feedback override is
// registered for the table — the signal that its home DBMS's reported
// statistics were observed to be stale.
func (s *System) hasStatsOverride(table string) bool {
	_, ok := s.statsFeedback.Load(strings.ToLower(table))
	return ok
}

// sampleScan issues one probe and applies its result. An exhausted probe
// saw the whole relation, so its counts and sketch are exact: the scan
// adopts them outright and the correction is fed to the cross-query
// statistics loop. A truncated probe only ever *raises* the estimate to
// the observed match count — the unscanned remainder is unknown, and a
// lower bound must never argue an estimate down.
func (s *System) sampleScan(ctx context.Context, sc *Scan, limit int64) {
	sp := obs.SpanFrom(ctx).Child("sample")
	sp.Set("node", sc.Node)
	sp.Set("table", sc.Table)
	if !s.health.healthy(sc.Node) {
		met.sampleProbes.With("skipped_breaker").Inc()
		sp.Set("outcome", "skipped_breaker")
		sp.Finish()
		return
	}
	filter := ""
	if sc.Filter != nil {
		filter = sc.Filter.String()
	}
	start := time.Now()
	res, err := s.SampleRelation(ctx, sc.Node, sc.Table, sc.Alias, filter, limit)
	observeSeconds(met.sampleDur, time.Since(start))
	if err != nil {
		met.sampleProbes.With("degraded_error").Inc()
		sp.Set("outcome", "degraded_error")
		sp.SetErr(err)
		sp.Finish()
		return
	}
	sp.Set("scanned", strconv.FormatInt(res.Scanned, 10))
	sp.Set("matched", strconv.FormatInt(res.Matched, 10))
	outcome := "agreed"
	if res.Exhausted {
		exact := math.Max(float64(res.Matched), 1)
		if sc.est != exact || !statsEqual(sc.Stats, res.Stats) {
			outcome = "sampled"
		}
		sc.Stats = res.Stats
		sc.est = exact
		sc.width = estimateWidth(sc)
		s.feedSampledStats(sc, res.Stats)
	} else if lb := float64(res.Matched); lb > sc.est {
		// At least lb rows match among the first Scanned alone.
		sc.est = lb
		outcome = "sampled"
	}
	met.sampleProbes.With(outcome).Inc()
	sp.Set("outcome", outcome)
	sp.Finish()
}

// feedSampledStats installs an exhausted probe's exact statistics as a
// statsOverride, mirroring feedObservedRows: the catalog republishes the
// truth immediately, metadata refreshes keep substituting it while the
// node reports the same stale snapshot, and the node's consulted costs
// and cached plans — built on the disproved statistics — are dropped.
// One sample thereby benefits every subsequent query, not just this one.
func (s *System) feedSampledStats(sc *Scan, exact *engine.TableStats) {
	info, ok := s.catalog.Lookup(sc.Table)
	if !ok || info.Stats == nil || statsEqual(info.Stats, exact) {
		return
	}
	key := strings.ToLower(sc.Table)
	base := info.Stats
	if prev, ok := s.statsFeedback.Load(key); ok {
		// Keep the original stale snapshot as the drift sentinel (the
		// catalog may already hold a corrected version while the node
		// still reports the original).
		base = prev.(*statsOverride).base
	}
	s.statsFeedback.Store(key, &statsOverride{base: base, corrected: exact})
	s.catalog.Put(&TableInfo{Name: info.Name, Node: info.Node, Schema: info.Schema, Stats: exact})
	if s.CacheStats {
		s.statsCache.Store(key, exact)
	}
	s.consults.invalidateNode(info.Node)
	s.invalidatePlansOnNode(info.Node)
}
