package core

import (
	"sync"
	"time"
)

// The delegation-plan cache. Every query normally pays logical
// optimization, annotation, DDL deployment, and a drop-per-query cleanup —
// even for an identical repeat statement ("short-lived relations",
// Sec. III). With warm annotation down to microseconds, deployment DDL is
// the repeat-query bottleneck, so the middleware memoizes the whole
// delegation: the plan AND its deployed objects, keyed on the normalized
// AST (the canonical rendering of the parsed statement). A cached
// deployment is kept alive by refcounted leases — every executing query
// holds one, so invalidation can never drop a view out from under a
// running cascade — and a janitor drops deployments idle past
// Options.DeploymentTTL.
//
// Freshness reuses the consult-cache machinery one layer down:
//
//   - a breaker state transition on a node invalidates every cached plan
//     deployed there (the plan was costed against a node state that no
//     longer holds, and its objects may be gone);
//   - a metadata refresh that changes a table's statistics invalidates its
//     home node's plans — the placements were functions of the old stats;
//   - an execution failure on a cached deployment poisons that entry: its
//     objects may be partially gone, so they are dropped rather than
//     reused.
//
// A nil *planCache (Options.PlanCacheSize == 0, the paper configuration)
// is a valid no-op receiver for every method, matching consultCache.

// DefaultDeploymentTTL is how long an idle cached deployment stays warm
// when Options.DeploymentTTL is unset.
const DefaultDeploymentTTL = 30 * time.Second

// PlanCacheStats is a point-in-time snapshot of the delegation-plan cache
// (System.PlanCacheStats / SystemStats.PlanCache).
type PlanCacheStats struct {
	// Entries is the current occupancy — each entry holds one live
	// deployment (0 when the cache is disabled).
	Entries int
	// ActiveLeases counts the leases currently held by executing queries
	// across all entries.
	ActiveLeases int
	// Hits and Misses count lookups over the cache's life. A hit serves
	// the query with zero planning round trips and zero DDLs.
	Hits, Misses int64
	// Evictions counts entries dropped by capacity pressure or TTL
	// expiry; Invalidations counts entries dropped by a breaker
	// transition, a changed-statistics refresh, or an execution failure.
	Evictions, Invalidations int64
}

// planEntry is one cached delegation: the plan, its live deployment, and
// the lease bookkeeping. All fields past the identity are guarded by the
// owning cache's mutex.
type planEntry struct {
	key  string
	plan *Plan
	dep  *Deployment
	// nodes is every DBMS the deployment placed objects on — the
	// invalidation fan-in for breaker transitions and stats changes.
	nodes map[string]bool

	refs     int  // leases held by executing queries
	dead     bool // invalidated/evicted; drop the deployment once idle
	dropped  bool // the drop has been claimed (exactly-once)
	lastUsed time.Time
}

// planCache memoizes delegation plans and their live deployments across
// queries. Safe for concurrent use. The cache only does bookkeeping — the
// System owns the actual DDL drops for entries the cache hands back.
type planCache struct {
	size int
	ttl  time.Duration

	mu      sync.Mutex
	entries map[string]*planEntry

	hits, misses, evictions, invalidations int64
}

// newPlanCache returns the cache, or nil (disabled) when size <= 0. A
// non-positive ttl falls back to DefaultDeploymentTTL.
func newPlanCache(size int, ttl time.Duration) *planCache {
	if size <= 0 {
		return nil
	}
	if ttl <= 0 {
		ttl = DefaultDeploymentTTL
	}
	return &planCache{size: size, ttl: ttl, entries: map[string]*planEntry{}}
}

// acquire looks the key up and, on a hit, takes a lease on the entry —
// the caller must pair it with release (or invalidate, after an execution
// failure). Dead entries are unreachable: invalidation removes them from
// the map immediately.
func (c *planCache) acquire(key string) *planEntry {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	ent, ok := c.entries[key]
	if !ok {
		c.misses++
		met.planMisses.Inc()
		return nil
	}
	ent.refs++
	ent.lastUsed = time.Now()
	c.hits++
	met.planHits.Inc()
	return ent
}

// put caches a freshly deployed plan under a lease held by the caller. It
// returns the new entry (nil when the deployment could not be cached: the
// key raced in concurrently, or the cache is full of busy entries — the
// caller then cleans its deployment up per-query as usual) plus any
// entries evicted for capacity, whose deployments the caller must drop.
func (c *planCache) put(key string, plan *Plan, dep *Deployment) (*planEntry, []*planEntry) {
	if c == nil {
		return nil, nil
	}
	nodes := map[string]bool{}
	for _, t := range plan.Tasks {
		nodes[t.Node] = true
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.entries[key]; ok {
		return nil, nil // a concurrent identical query won the insert
	}
	var evicted []*planEntry
	for len(c.entries) >= c.size {
		victim := c.oldestIdleLocked()
		if victim == nil {
			return nil, evicted // every entry is leased: nothing to evict
		}
		delete(c.entries, victim.key)
		victim.dead, victim.dropped = true, true
		c.evictions++
		met.planEvictions.Inc()
		evicted = append(evicted, victim)
	}
	ent := &planEntry{
		key: key, plan: plan, dep: dep, nodes: nodes,
		refs: 1, lastUsed: time.Now(),
	}
	c.entries[key] = ent
	return ent, evicted
}

// oldestIdleLocked returns the least-recently-used entry with no live
// lease, or nil when every entry is busy. Caller holds c.mu.
func (c *planCache) oldestIdleLocked() *planEntry {
	var victim *planEntry
	for _, ent := range c.entries {
		if ent.refs > 0 {
			continue
		}
		if victim == nil || ent.lastUsed.Before(victim.lastUsed) {
			victim = ent
		}
	}
	return victim
}

// release returns a lease after a successful execution. It reports
// whether the caller must drop the entry's deployment — true only when
// the entry died (invalidation raced the execution) and this was the last
// lease.
func (c *planCache) release(ent *planEntry) (drop bool) {
	if c == nil || ent == nil {
		return false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	ent.refs--
	ent.lastUsed = time.Now()
	return c.claimDropLocked(ent)
}

// invalidate poisons the entry after an execution failure and returns the
// caller's lease. It reports whether the caller must drop the deployment
// (false when another query still holds a lease — the last one drops).
func (c *planCache) invalidate(ent *planEntry) (drop bool) {
	if c == nil || ent == nil {
		return false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if cur, ok := c.entries[ent.key]; ok && cur == ent {
		delete(c.entries, ent.key)
		c.invalidations++
		met.planEvictions.Inc()
	}
	ent.dead = true
	ent.refs--
	return c.claimDropLocked(ent)
}

// claimDropLocked claims the exactly-once drop of a dead, idle entry.
// Caller holds c.mu.
func (c *planCache) claimDropLocked(ent *planEntry) bool {
	if ent.dead && ent.refs <= 0 && !ent.dropped {
		ent.dropped = true
		return true
	}
	return false
}

// invalidateNode drops every cached plan deployed on the node, returning
// the entries whose deployments the caller must drop now. Entries still
// leased by executing queries are only marked dead — the last release
// drops them — so a running cascade never loses its views mid-flight.
func (c *planCache) invalidateNode(node string) []*planEntry {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	var drops []*planEntry
	for key, ent := range c.entries {
		if !ent.nodes[node] {
			continue
		}
		delete(c.entries, key)
		ent.dead = true
		c.invalidations++
		met.planEvictions.Inc()
		if c.claimDropLocked(ent) {
			drops = append(drops, ent)
		}
	}
	return drops
}

// invalidateAll empties the cache (shutdown), returning the idle entries
// to drop; busy entries drop on their final release.
func (c *planCache) invalidateAll() []*planEntry {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	var drops []*planEntry
	for key, ent := range c.entries {
		delete(c.entries, key)
		ent.dead = true
		c.invalidations++
		met.planEvictions.Inc()
		if c.claimDropLocked(ent) {
			drops = append(drops, ent)
		}
	}
	return drops
}

// expire removes entries idle past the TTL (the janitor's sweep),
// returning them for the caller to drop. Leased entries never expire —
// lastUsed refreshes on acquire and release.
func (c *planCache) expire(now time.Time) []*planEntry {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	var drops []*planEntry
	for key, ent := range c.entries {
		if ent.refs > 0 || now.Sub(ent.lastUsed) < c.ttl {
			continue
		}
		delete(c.entries, key)
		ent.dead, ent.dropped = true, true
		c.evictions++
		met.planEvictions.Inc()
		drops = append(drops, ent)
	}
	return drops
}

// occupancy returns the current entry count.
func (c *planCache) occupancy() int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// activeLeases returns the leases currently held across all entries.
func (c *planCache) activeLeases() int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	n := 0
	for _, ent := range c.entries {
		n += ent.refs
	}
	return n
}

// stats snapshots the cache counters.
func (c *planCache) stats() PlanCacheStats {
	if c == nil {
		return PlanCacheStats{}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	leases := 0
	for _, ent := range c.entries {
		leases += ent.refs
	}
	return PlanCacheStats{
		Entries:       len(c.entries),
		ActiveLeases:  leases,
		Hits:          c.hits,
		Misses:        c.misses,
		Evictions:     c.evictions,
		Invalidations: c.invalidations,
	}
}
