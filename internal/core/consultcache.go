package core

import (
	"math"
	"sync"
	"time"

	"xdb/internal/engine"
)

// The cross-query consult cache. The annotation phase prices every
// cross-database operator by consulting the underlying DBMSes (Eq. 1),
// and those round trips dominate the optimizer's cost (Fig. 15). Two
// queries over the same tables ask the engines nearly identical
// questions, so the middleware memoizes CostOperator answers across
// queries, keyed by (node, operator kind, bucketed cardinalities).
// Bucketing to three significant digits folds near-identical estimates
// onto one entry without letting materially different operators collide.
//
// Freshness rules (stale costs must not outlive the state they priced):
//
//   - every entry ages out after Options.ConsultCacheTTL;
//   - a breaker state transition on a node drops that node's entries —
//     costs consulted before an outage say nothing about the node after
//     it (and nothing during it);
//   - a metadata refresh that changes a table's statistics drops its
//     home node's entries — the engine's answers were functions of the
//     old table state.
//
// A nil *consultCache (Options.ConsultCacheTTL == 0, the paper
// configuration) is a valid no-op receiver for every method, so the
// disabled path costs nothing and records no cache metrics.

// consultKey identifies one memoizable consultation.
type consultKey struct {
	node             string
	kind             engine.CostKind
	left, right, out float64
}

type consultEntry struct {
	cost    float64
	expires time.Time
}

// ConsultCacheStats is a point-in-time snapshot of the consult cache
// (System.Stats().ConsultCache).
type ConsultCacheStats struct {
	// Entries is the current occupancy (0 when the cache is disabled).
	Entries int
	// Hits and Misses count lookups over the cache's life; Evictions
	// counts entries dropped by TTL expiry or invalidation (breaker
	// transitions, stats refresh).
	Hits, Misses, Evictions int64
}

// consultCache memoizes consultation probe results across queries. Safe
// for concurrent use.
type consultCache struct {
	ttl time.Duration

	mu                      sync.Mutex
	entries                 map[consultKey]consultEntry
	hits, misses, evictions int64
}

// newConsultCache returns the cache, or nil (disabled) when ttl <= 0.
func newConsultCache(ttl time.Duration) *consultCache {
	if ttl <= 0 {
		return nil
	}
	return &consultCache{ttl: ttl, entries: map[consultKey]consultEntry{}}
}

// bucketCard quantizes a cardinality to three significant digits, so
// near-identical estimates share a cache entry while materially different
// operators stay apart.
func bucketCard(x float64) float64 {
	if x <= 0 || math.IsInf(x, 0) || math.IsNaN(x) {
		return 0
	}
	scale := math.Pow(10, math.Floor(math.Log10(x))-2)
	return math.Round(x/scale) * scale
}

func (c *consultCache) key(node string, kind engine.CostKind, left, right, out float64) consultKey {
	return consultKey{
		node: node, kind: kind,
		left: bucketCard(left), right: bucketCard(right), out: bucketCard(out),
	}
}

// cacheable rejects non-finite cardinalities. bucketCard folds NaN/Inf
// onto the 0 bucket, where a poisoned estimate would collide with a
// legitimate zero-cardinality probe and serve it a wrong cached cost —
// such probes bypass the cache entirely: never keyed, never stored, and
// never counted as a hit or miss.
func cacheable(left, right, out float64) bool {
	finite := func(x float64) bool { return !math.IsInf(x, 0) && !math.IsNaN(x) }
	return finite(left) && finite(right) && finite(out)
}

// lookup returns the cached cost for the probe, expiring the entry (and
// counting an eviction) when its TTL has passed.
func (c *consultCache) lookup(node string, kind engine.CostKind, left, right, out float64) (float64, bool) {
	if c == nil || !cacheable(left, right, out) {
		return 0, false
	}
	k := c.key(node, kind, left, right, out)
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.entries[k]
	if ok && time.Now().After(e.expires) {
		delete(c.entries, k)
		c.evictions++
		met.cacheEvictions.Inc()
		ok = false
	}
	if !ok {
		c.misses++
		met.cacheMisses.Inc()
		return 0, false
	}
	c.hits++
	met.cacheHits.Inc()
	return e.cost, true
}

// store memoizes one successful probe result. Failed probes are never
// cached — a degraded estimate must not outlive the failure that caused
// it.
func (c *consultCache) store(node string, kind engine.CostKind, left, right, out, cost float64) {
	if c == nil || !cacheable(left, right, out) {
		return
	}
	k := c.key(node, kind, left, right, out)
	c.mu.Lock()
	c.entries[k] = consultEntry{cost: cost, expires: time.Now().Add(c.ttl)}
	c.mu.Unlock()
}

// invalidateNode drops every entry consulted at the node, returning how
// many were evicted.
func (c *consultCache) invalidateNode(node string) int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	n := 0
	for k := range c.entries {
		if k.node == node {
			delete(c.entries, k)
			n++
		}
	}
	c.evictions += int64(n)
	c.mu.Unlock()
	met.cacheEvictions.Add(int64(n))
	return n
}

// occupancy returns the current entry count.
func (c *consultCache) occupancy() int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// stats snapshots the cache counters.
func (c *consultCache) stats() ConsultCacheStats {
	if c == nil {
		return ConsultCacheStats{}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return ConsultCacheStats{
		Entries:   len(c.entries),
		Hits:      c.hits,
		Misses:    c.misses,
		Evictions: c.evictions,
	}
}

// consultCacher is implemented by Costers that maintain a cross-query
// consult cache (the System). The annotator serves probes from it before
// spending a round trip; test fakes simply don't implement it.
type consultCacher interface {
	// LookupCost returns a previously consulted cost for the probe.
	LookupCost(node string, kind engine.CostKind, left, right, out float64) (float64, bool)
	// StoreCost memoizes a successfully consulted cost.
	StoreCost(node string, kind engine.CostKind, left, right, out, cost float64)
}
