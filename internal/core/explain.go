package core

import (
	"fmt"
	"strings"
	"time"

	"xdb/internal/obs"
)

// EXPLAIN ANALYZE: the executed delegation plan annotated with what the
// wire actually observed. The planner's half (tasks, movements,
// estimates) comes from Result.Plan; the observed half (per-edge rows,
// bytes, frames) from the flow accounting in Result.Flows; the timing
// half from Breakdown and, when tracing was on, the per-phase and
// per-DDL spans of Result.Trace.

// Analyze renders the executed plan with estimated vs observed
// cardinalities per edge, per-edge wire volume, phase timings, and the
// replan/reopt/failover verdicts — the plan and the flame tree joined in
// one artifact.
func (r *Result) Analyze() string {
	if r == nil {
		return ""
	}
	var b strings.Builder
	b.WriteString("EXPLAIN ANALYZE\n")
	bd := r.Breakdown

	// Index the executed attempt's flows by producing task. Barrier
	// flows (COUNT(*) probes of explicit FTs) render separately.
	var barriers []EdgeFlow
	byTask := map[int]EdgeFlow{}
	for _, f := range r.Flows {
		if f.QID != r.QID {
			continue // a retired attempt's stream
		}
		if f.Kind == "barrier" {
			barriers = append(barriers, f)
			continue
		}
		byTask[f.Task] = f
	}

	if r.Plan != nil && r.Plan.Root != nil {
		fmt.Fprintf(&b, "tasks (%d, root t%d on %s):\n", len(r.Plan.Tasks), r.Plan.Root.ID, r.Plan.Root.Node)
		for _, t := range r.Plan.Tasks {
			fmt.Fprintf(&b, "  t%d on %s\n", t.ID, t.Node)
		}
		if len(r.Plan.Edges) > 0 {
			b.WriteString("edges (est vs observed):\n")
			for _, e := range r.Plan.Edges {
				fmt.Fprintf(&b, "  t%d --%s--> t%d [%s -> %s]: est %.0f rows",
					e.From.ID, e.Move, e.To.ID, e.From.Node, e.To.Node, e.EstRows)
				if f, ok := byTask[e.From.ID]; ok && (f.FramesRecv > 0 || f.FramesSent > 0) {
					fmt.Fprintf(&b, ", actual %d rows%s, %s over %d frames",
						f.Rows(), divergenceVerdict(e.EstRows, float64(f.Rows())),
						formatKB(f.Bytes()), f.FramesRecv+f.FramesSent)
					if !f.Done {
						b.WriteString(" (stream not drained)")
					}
				} else {
					b.WriteString(", not observed (reused materialization or unexecuted)")
				}
				b.WriteString("\n")
			}
		}
		if root, ok := byTask[r.Plan.Root.ID]; ok {
			fmt.Fprintf(&b, "result delivery: t%d [%s -> client]: %d rows, %s\n",
				r.Plan.Root.ID, r.RootNode, root.Rows(), formatKB(root.Bytes()))
		}
	}
	for _, f := range barriers {
		fmt.Fprintf(&b, "barrier %s: counted %d rows (%s)\n", f.Rel, f.Rows(), formatKB(f.Bytes()))
	}

	b.WriteString("phases:\n")
	fmt.Fprintf(&b, "  admission %v", bd.AdmissionWait.Round(time.Microsecond))
	if bd.Queued {
		b.WriteString(" (queued)")
	}
	fmt.Fprintf(&b, "\n  prep %v, lopt %v, ann %v, deleg %v, exec %v\n",
		bd.Prep.Round(time.Microsecond), bd.Lopt.Round(time.Microsecond),
		bd.Ann.Round(time.Microsecond), bd.Deleg.Round(time.Microsecond),
		bd.Exec.Round(time.Microsecond))
	fmt.Fprintf(&b, "  consult rounds %d (degraded %d, cached %d), ddls %d\n",
		bd.ConsultRounds, bd.DegradedProbes, bd.CachedProbes, bd.DDLCount)

	if r.Trace != nil {
		var ddls []string
		r.Trace.Walk(func(_ int, sp *obs.Span) {
			if sp.Name() != "ddl" {
				return
			}
			line := fmt.Sprintf("  %s %s on %s: %v", sp.Attr("kind"), sp.Attr("object"),
				sp.Attr("node"), sp.Duration().Round(time.Microsecond))
			if e := sp.Err(); e != "" {
				line += " (error: " + e + ")"
			}
			ddls = append(ddls, line)
		})
		if len(ddls) > 0 {
			fmt.Fprintf(&b, "ddl timings (%d statements):\n%s\n", len(ddls), strings.Join(ddls, "\n"))
		}
	}

	b.WriteString("verdicts:\n")
	cache := "miss"
	if bd.PlanCacheHit {
		cache = "hit (0 consults, 0 ddls)"
	}
	fmt.Fprintf(&b, "  plan cache: %s\n", cache)
	if bd.Replans > 0 || bd.FailedOver || bd.MediatorFallback {
		fmt.Fprintf(&b, "  failover: replans %d, failed_over %v, mediator_fallback %v\n",
			bd.Replans, bd.FailedOver, bd.MediatorFallback)
	}
	if bd.Reopts > 0 || bd.EstimateErrors > 0 {
		fmt.Fprintf(&b, "  reopt: reopts %d, estimate_errors %d\n", bd.Reopts, bd.EstimateErrors)
	}
	if bd.SampleProbes > 0 {
		fmt.Fprintf(&b, "  sampling: probes %d\n", bd.SampleProbes)
	}
	return b.String()
}

// divergenceVerdict renders the est-vs-actual ratio annotation: empty
// when they agree within 10%, else the factor and direction.
func divergenceVerdict(est, actual float64) string {
	if est <= 0 {
		return ""
	}
	if actual < 1 {
		actual = 1
	}
	r := actual / est
	switch {
	case r > 1.1:
		return fmt.Sprintf(" (%.1fx underestimated)", r)
	case r < 0.9:
		return fmt.Sprintf(" (%.1fx overestimated)", 1/r)
	}
	return ""
}

// formatKB renders a byte count for humans.
func formatKB(n int64) string {
	if n < 4096 {
		return fmt.Sprintf("%d B", n)
	}
	return fmt.Sprintf("%.1f KB", float64(n)/1024)
}
