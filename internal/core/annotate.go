package core

import (
	"context"
	"fmt"
	"math"
	"time"

	"xdb/internal/engine"
	"xdb/internal/obs"
)

// Plan annotation (Sec. IV-B2): a depth-first post-order traversal that
// assigns every operator a DBMS (its annotation) and every edge a dataflow
// operation, applying:
//
//	Rule 1 — table scans get their home DBMS;
//	Rule 2 — unary operators inherit their input's annotation (edge i);
//	Rule 3 — binary operators with equal input annotations inherit it;
//	Rule 4 — cross-database binary operators solve Equation 1 by
//	         consulting the candidate DBMSes for operator costs and
//	         pricing the data movements, with the paper's pruning: only
//	         the two inputs' DBMSes are candidate placements, which also
//	         rules out plans like Fig. 5c.
//
// The movement decision encodes the trade-off of Sec. IV-A: an implicit
// (pipelined) input cannot be the hash build side of the consuming join —
// the stream must probe — while an explicit (materialized) input costs an
// extra scan but lets the local optimizer arrange the join freely.

// Coster abstracts the consulting interface the annotator uses — the
// System implements it over the wire connectors; tests may fake it.
type Coster interface {
	// CostOperator prices an operator at a DBMS in calibrated common
	// units (one consultation round trip). The context bounds the probe;
	// cancelling it degrades the estimate to the local cost model.
	CostOperator(ctx context.Context, node string, kind engine.CostKind, left, right, out float64) (float64, error)
	// AllNodes lists every registered DBMS (for the FullCandidateSet
	// ablation).
	AllNodes() []string
	// LinkFactor scales movement cost between two nodes relative to the
	// baseline LAN link (>= 1 for slower links).
	LinkFactor(from, to string) float64
	// Healthy reports whether the node can currently be consulted and
	// considered as a placement candidate (false while its circuit
	// breaker is open). The annotator never probes an unhealthy node;
	// it prices it with the local cost model or excludes it outright.
	Healthy(node string) bool
}

// Movement cost constants (calibrated common units per row/byte on the
// baseline link).
const (
	cMovePerRow  = 2.0
	cMovePerByte = 0.05
)

// Annotation is the annotator's output: operator placements and edge
// movements (only cross-DBMS edges carry a movement).
type Annotation struct {
	Node map[Op]string
	// Move labels the edge from an operator to its parent when the two
	// sides differ in annotation.
	Move map[Op]Movement
	// ConsultRounds counts the cost probes issued (Fig. 15's
	// "consultation roundtrips").
	ConsultRounds int
	// DegradedProbes counts the decisions made without consulting a
	// DBMS: placement candidates excluded because their breaker is open,
	// and cost probes that failed and fell back to the local model.
	DegradedProbes int
}

// annotate runs the annotation pass over the logical plan. The context
// bounds the consultation probes; cancellation aborts the pass.
func annotate(ctx context.Context, root Op, coster Coster, opts Options) (*Annotation, error) {
	a := &Annotation{Node: map[Op]string{}, Move: map[Op]Movement{}}
	if err := a.visit(ctx, root, coster, opts); err != nil {
		return nil, err
	}
	return a, nil
}

func (a *Annotation) visit(ctx context.Context, op Op, coster Coster, opts Options) error {
	// A cancelled query must stop consulting, not degrade every remaining
	// decision to the local model and then fail at delegation.
	if err := ctx.Err(); err != nil {
		return fmt.Errorf("core: annotate: %w", err)
	}
	switch o := op.(type) {
	case *Scan:
		// Rule 1.
		a.Node[op] = o.Node
		return nil

	case *Final:
		// Rule 2.
		if err := a.visit(ctx, o.In, coster, opts); err != nil {
			return err
		}
		a.Node[op] = a.Node[o.In]
		return nil

	case *Join:
		if err := a.visit(ctx, o.L, coster, opts); err != nil {
			return err
		}
		if err := a.visit(ctx, o.R, coster, opts); err != nil {
			return err
		}
		ln, rn := a.Node[o.L], a.Node[o.R]
		if ln == rn {
			// Rule 3.
			a.Node[op] = ln
			return nil
		}
		// Rule 4.
		a.placeCrossJoin(ctx, o, coster, opts)
		return nil

	default:
		return fmt.Errorf("core: annotate: unexpected operator %T", op)
	}
}

// placeCrossJoin solves Equation 1 for a cross-database join. Probe
// failures never abort it: an unreachable candidate is priced by the local
// cost model or — when its breaker is open — excluded from placement
// entirely (degraded planning).
func (a *Annotation) placeCrossJoin(ctx context.Context, j *Join, coster Coster, opts Options) {
	ln, rn := a.Node[j.L], a.Node[j.R]
	candidates := []string{ln, rn}
	if opts.FullCandidateSet {
		candidates = coster.AllNodes()
	}

	// Degraded planning: a candidate whose breaker is open is excluded —
	// placing an operator there would only deploy DDL onto a dead node.
	// With the paper's two-candidate pruning this falls back to the
	// healthy input's site. If every candidate is unhealthy there is no
	// better choice; keep them all and let delegation surface the outage.
	healthy := make([]string, 0, len(candidates))
	for _, cand := range candidates {
		if coster.Healthy(cand) {
			healthy = append(healthy, cand)
		}
	}
	if n := len(candidates) - len(healthy); n > 0 && len(healthy) > 0 {
		a.DegradedProbes += n
		candidates = healthy
	}

	type decision struct {
		node  string
		moveL Movement
		moveR Movement
		cost  float64
	}
	var best *decision
	for _, cand := range candidates {
		d := decision{node: cand, moveL: MoveImplicit, moveR: MoveImplicit}
		var total float64

		// Determine per-child movement and the resulting join input
		// arrangement at the candidate.
		type side struct {
			op     Op
			from   string
			move   Movement
			local  bool
			stream bool
		}
		sides := [2]side{
			{op: j.L, from: ln},
			{op: j.R, from: rn},
		}
		for i := range sides {
			s := &sides[i]
			s.local = s.from == cand
			if s.local {
				s.move = MoveImplicit
				continue
			}
			mv := moveCost(s.op, coster.LinkFactor(s.from, cand))
			// Both movements pay the move itself (Eqs. 2 and 3); the
			// movement-combination comparison below adds the explicit
			// variant's materialization costs and settles the choice
			// (or applies ForceMovement).
			s.move = MoveImplicit
			s.stream = true
			total += mv
		}

		// Join cost at the candidate under each movement combination of
		// the remote sides; pick the cheapest combination.
		bestJoin := math.Inf(1)
		var bestMoves [2]Movement
		combos := movementCombos(sides[0].local, sides[1].local, opts.ForceMovement)
		for _, combo := range combos {
			jc, extra := a.joinCostAt(ctx, coster, cand, j, sides[0].op, sides[1].op, combo[0] == MoveImplicit && !sides[0].local, combo[1] == MoveImplicit && !sides[1].local)
			// Explicit sides pay the materialization write plus the scan
			// of the stored copy (Eq. 3's scanCost term; the write is the
			// same volume).
			for i, mv := range combo {
				if !sides[i].local && mv == MoveExplicit {
					extra += 2 * a.probe(ctx, coster, cand, engine.CostScan, sides[i].op.Est(), 0, 0)
				}
			}
			if jc+extra < bestJoin {
				bestJoin = jc + extra
				bestMoves = combo
			}
		}
		total += bestJoin
		d.moveL, d.moveR = bestMoves[0], bestMoves[1]
		d.cost = total
		if best == nil || d.cost < best.cost {
			b := d
			best = &b
		}
	}

	a.Node[j] = best.node
	if ln != best.node {
		a.Move[j.L] = best.moveL
	}
	if rn != best.node {
		a.Move[j.R] = best.moveR
	}

	// One "place" span per Rule-4 decision: the chosen site and the
	// movement verdict for each input edge.
	if sp := obs.SpanFrom(ctx); sp != nil {
		psp := sp.Child("place")
		psp.Set("node", best.node)
		if ln != best.node {
			psp.Set("move_left", moveVerdict(best.moveL))
		}
		if rn != best.node {
			psp.Set("move_right", moveVerdict(best.moveR))
		}
		psp.Finish()
	}
}

// moveVerdict spells a movement out for trace attributes.
func moveVerdict(m Movement) string {
	if m == MoveExplicit {
		return "explicit"
	}
	return "implicit"
}

// movementCombos enumerates the movement choices for the two sides (local
// sides are pinned to implicit).
func movementCombos(lLocal, rLocal bool, force Movement) [][2]Movement {
	options := func(local bool) []Movement {
		if local {
			return []Movement{MoveImplicit}
		}
		if force != 0 {
			return []Movement{force}
		}
		return []Movement{MoveImplicit, MoveExplicit}
	}
	var out [][2]Movement
	for _, l := range options(lLocal) {
		for _, r := range options(rLocal) {
			out = append(out, [2]Movement{l, r})
		}
	}
	return out
}

// joinCostAt consults the candidate DBMS for the join cost given which
// inputs arrive as streams.
func (a *Annotation) joinCostAt(ctx context.Context, coster Coster, cand string, j *Join, l, r Op, lStream, rStream bool) (float64, float64) {
	out := j.Est()
	var kind engine.CostKind
	var left, right float64
	switch {
	case lStream && rStream:
		// Both inputs stream (only possible with the full candidate set):
		// the larger stream probes a build over the smaller, which must
		// first be buffered — price as a stream join plus a scan of the
		// buffered side.
		big, small := l.Est(), r.Est()
		if big < small {
			big, small = small, big
		}
		kind, left, right = engine.CostJoinStream, big, small
	case lStream:
		kind, left, right = engine.CostJoinStream, l.Est(), r.Est()
	case rStream:
		kind, left, right = engine.CostJoinStream, r.Est(), l.Est()
	default:
		kind, left, right = engine.CostJoin, l.Est(), r.Est()
	}
	return a.probe(ctx, coster, cand, kind, left, right, out), 0
}

// probe consults one DBMS for an operator cost, falling back to the local
// cost model when the node cannot answer — an erroring probe or an open
// breaker must degrade the estimate, not abort the plan (the middleware
// owns failure handling for the engines it coordinates). Fallbacks are
// counted in DegradedProbes; only real round trips count as consult
// rounds.
func (a *Annotation) probe(ctx context.Context, coster Coster, node string, kind engine.CostKind, left, right, out float64) float64 {
	sp := obs.SpanFrom(ctx).Child("probe")
	sp.Set("node", node)
	sp.Set("kind", string(kind))
	if !coster.Healthy(node) {
		a.DegradedProbes++
		sp.Set("outcome", "degraded_breaker")
		sp.Finish()
		return localCost(kind, left, right, out)
	}
	a.ConsultRounds++
	start := time.Now()
	c, err := coster.CostOperator(ctx, node, kind, left, right, out)
	observeSeconds(met.probeDur, time.Since(start))
	if err != nil {
		a.DegradedProbes++
		sp.Set("outcome", "degraded_error")
		sp.SetErr(err)
		sp.Finish()
		return localCost(kind, left, right, out)
	}
	sp.Set("outcome", "consulted")
	sp.Finish()
	return c
}

// localCost is the middleware's own calibrated cost model: the same
// textbook shapes the emulated engines price, in the common currency the
// calibration normalizes to (a scan of N rows costs N units). It is the
// degraded-mode stand-in when a DBMS cannot be consulted, and is vendor-
// blind — exactly the information loss that makes consulting worth its
// round trips when the engines are reachable.
func localCost(kind engine.CostKind, left, right, out float64) float64 {
	switch kind {
	case engine.CostJoin:
		small, big := left, right
		if small > big {
			small, big = big, small
		}
		return small*1.5 + big*1.0 + out*0.5
	case engine.CostJoinStream:
		// The streamed (left) side probes a build over the local right.
		return right*1.5 + left*1.0 + out*0.5
	case engine.CostAgg:
		return left * 1.2
	default: // CostScan and anything unknown: linear in input.
		return left
	}
}

// moveCost prices shipping an operator's output across a link (Eq. 2's
// moveCost term).
func moveCost(op Op, linkFactor float64) float64 {
	if linkFactor < 1 {
		linkFactor = 1
	}
	return op.Est() * (cMovePerRow + op.Width()*cMovePerByte) * linkFactor
}
