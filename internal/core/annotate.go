package core

import (
	"context"
	"fmt"
	"math"
	"sync"
	"time"

	"xdb/internal/engine"
	"xdb/internal/obs"
)

// Plan annotation (Sec. IV-B2): a depth-first post-order traversal that
// assigns every operator a DBMS (its annotation) and every edge a dataflow
// operation, applying:
//
//	Rule 1 — table scans get their home DBMS;
//	Rule 2 — unary operators inherit their input's annotation (edge i);
//	Rule 3 — binary operators with equal input annotations inherit it;
//	Rule 4 — cross-database binary operators solve Equation 1 by
//	         consulting the candidate DBMSes for operator costs and
//	         pricing the data movements, with the paper's pruning: only
//	         the two inputs' DBMSes are candidate placements, which also
//	         rules out plans like Fig. 5c.
//
// The movement decision encodes the trade-off of Sec. IV-A: an implicit
// (pipelined) input cannot be the hash build side of the consuming join —
// the stream must probe — while an explicit (materialized) input costs an
// extra scan but lets the local optimizer arrange the join freely.

// Coster abstracts the consulting interface the annotator uses — the
// System implements it over the wire connectors; tests may fake it.
type Coster interface {
	// CostOperator prices an operator at a DBMS in calibrated common
	// units (one consultation round trip). The context bounds the probe;
	// cancelling it degrades the estimate to the local cost model.
	CostOperator(ctx context.Context, node string, kind engine.CostKind, left, right, out float64) (float64, error)
	// AllNodes lists every registered DBMS (for the FullCandidateSet
	// ablation).
	AllNodes() []string
	// LinkFactor scales movement cost between two nodes relative to the
	// baseline LAN link (>= 1 for slower links).
	LinkFactor(from, to string) float64
	// Healthy reports whether the node can currently be consulted and
	// considered as a placement candidate (false while its circuit
	// breaker is open). The annotator never probes an unhealthy node;
	// it prices it with the local cost model or excludes it outright.
	Healthy(node string) bool
}

// Movement cost constants (calibrated common units per row/byte on the
// baseline link).
const (
	cMovePerRow  = 2.0
	cMovePerByte = 0.05
)

// Annotation is the annotator's output: operator placements and edge
// movements (only cross-DBMS edges carry a movement).
type Annotation struct {
	Node map[Op]string
	// Move labels the edge from an operator to its parent when the two
	// sides differ in annotation.
	Move map[Op]Movement
	// ConsultRounds counts the cost probes issued (Fig. 15's
	// "consultation roundtrips").
	ConsultRounds int
	// DegradedProbes counts the decisions made without consulting a
	// DBMS: placement candidates excluded because their breaker is open,
	// and cost probes that failed and fell back to the local model.
	DegradedProbes int
	// CachedProbes counts the probes answered without a round trip: by
	// the per-decision memo (one Rule-4 decision never issues the same
	// probe twice) or by the cross-query consult cache
	// (Options.ConsultCacheTTL).
	CachedProbes int

	// mu guards the counters above during the parallel Rule-4 candidate
	// fan-out; reads after annotate returns need no lock.
	mu sync.Mutex
	// cache is the Coster's cross-query consult cache, when it maintains
	// one (nil for test fakes and when ConsultCacheTTL is 0).
	cache consultCacher
}

func (a *Annotation) addConsult() {
	a.mu.Lock()
	a.ConsultRounds++
	a.mu.Unlock()
}

func (a *Annotation) addDegraded(n int) {
	a.mu.Lock()
	a.DegradedProbes += n
	a.mu.Unlock()
}

func (a *Annotation) addCached() {
	a.mu.Lock()
	a.CachedProbes++
	a.mu.Unlock()
}

// annotate runs the annotation pass over the logical plan. The context
// bounds the consultation probes; cancellation aborts the pass.
func annotate(ctx context.Context, root Op, coster Coster, opts Options) (*Annotation, error) {
	a := &Annotation{Node: map[Op]string{}, Move: map[Op]Movement{}}
	if cc, ok := coster.(consultCacher); ok {
		a.cache = cc
	}
	if err := a.visit(ctx, root, coster, opts); err != nil {
		return nil, err
	}
	return a, nil
}

func (a *Annotation) visit(ctx context.Context, op Op, coster Coster, opts Options) error {
	// A cancelled query must stop consulting, not degrade every remaining
	// decision to the local model and then fail at delegation.
	if err := ctx.Err(); err != nil {
		return fmt.Errorf("core: annotate: %w", err)
	}
	switch o := op.(type) {
	case *Scan:
		// Rule 1.
		a.Node[op] = o.Node
		return nil

	case *Final:
		// Rule 2.
		if err := a.visit(ctx, o.In, coster, opts); err != nil {
			return err
		}
		a.Node[op] = a.Node[o.In]
		return nil

	case *Join:
		if err := a.visit(ctx, o.L, coster, opts); err != nil {
			return err
		}
		if err := a.visit(ctx, o.R, coster, opts); err != nil {
			return err
		}
		ln, rn := a.Node[o.L], a.Node[o.R]
		if ln == rn {
			// Rule 3.
			a.Node[op] = ln
			return nil
		}
		// Rule 4.
		a.placeCrossJoin(ctx, o, coster, opts)
		return nil

	default:
		return fmt.Errorf("core: annotate: unexpected operator %T", op)
	}
}

// placeCrossJoin solves Equation 1 for a cross-database join. Probe
// failures never abort it: an unreachable candidate is priced by the local
// cost model or — when its breaker is open — excluded from placement
// entirely (degraded planning).
func (a *Annotation) placeCrossJoin(ctx context.Context, j *Join, coster Coster, opts Options) {
	ln, rn := a.Node[j.L], a.Node[j.R]
	candidates := []string{ln, rn}
	if opts.FullCandidateSet {
		candidates = coster.AllNodes()
	}

	// Degraded planning: a candidate whose breaker is open is excluded —
	// placing an operator there would only deploy DDL onto a dead node.
	// With the paper's two-candidate pruning this falls back to the
	// healthy input's site. If every candidate is unhealthy there is no
	// better choice; keep them all and let delegation surface the outage.
	healthy := make([]string, 0, len(candidates))
	for _, cand := range candidates {
		if coster.Healthy(cand) {
			healthy = append(healthy, cand)
		}
	}
	if n := len(candidates) - len(healthy); n > 0 && len(healthy) > 0 {
		a.addDegraded(n)
		candidates = healthy
	}

	// Price every candidate site. The evaluations are independent (each
	// consults its own node), so they fan out concurrently — the
	// consultation round trips overlap instead of queueing behind one
	// another; Options.SerialAnnotation restores the paper's sequential
	// order for A/B runs. Decisions land in candidate order and the
	// reduction below keeps the serial tie-break (first strictly cheaper
	// wins), so the chosen plan is identical either way.
	decisions := make([]placeDecision, len(candidates))
	if opts.SerialAnnotation || len(candidates) < 2 {
		for i, cand := range candidates {
			decisions[i] = a.evalCandidate(ctx, j, coster, opts, cand, ln, rn)
		}
	} else {
		var wg sync.WaitGroup
		for i, cand := range candidates {
			wg.Add(1)
			go func(i int, cand string) {
				defer wg.Done()
				decisions[i] = a.evalCandidate(ctx, j, coster, opts, cand, ln, rn)
			}(i, cand)
		}
		wg.Wait()
	}
	best := &decisions[0]
	for i := 1; i < len(decisions); i++ {
		if decisions[i].cost < best.cost {
			best = &decisions[i]
		}
	}

	a.Node[j] = best.node
	if ln != best.node {
		a.Move[j.L] = best.moveL
	}
	if rn != best.node {
		a.Move[j.R] = best.moveR
	}

	// One "place" span per Rule-4 decision: the chosen site and the
	// movement verdict for each input edge.
	if sp := obs.SpanFrom(ctx); sp != nil {
		psp := sp.Child("place")
		psp.Set("node", best.node)
		if ln != best.node {
			psp.Set("move_left", moveVerdict(best.moveL))
		}
		if rn != best.node {
			psp.Set("move_right", moveVerdict(best.moveR))
		}
		psp.Finish()
	}
}

// placeDecision is one candidate site's priced outcome of a Rule-4
// decision.
type placeDecision struct {
	node  string
	moveL Movement
	moveR Movement
	cost  float64
}

// evalCandidate prices one candidate site of a Rule-4 decision: movement
// costs for the remote inputs plus the cheapest movement combination's
// join cost at the candidate. The memo dedupes probes within the decision
// — movement combinations share scan and stream-join consultations, and
// issuing each once is both correct and one fewer round trip.
func (a *Annotation) evalCandidate(ctx context.Context, j *Join, coster Coster, opts Options, cand, ln, rn string) placeDecision {
	memo := map[consultKey]float64{}
	d := placeDecision{node: cand, moveL: MoveImplicit, moveR: MoveImplicit}
	var total float64

	// Determine which inputs arrive from a remote DBMS; both movements
	// pay the move itself (Eqs. 2 and 3), while the movement-combination
	// comparison below adds the explicit variant's materialization costs
	// and settles the choice (or applies ForceMovement).
	type side struct {
		op    Op
		from  string
		local bool
	}
	sides := [2]side{
		{op: j.L, from: ln},
		{op: j.R, from: rn},
	}
	for i := range sides {
		s := &sides[i]
		s.local = s.from == cand
		if !s.local {
			total += moveCost(s.op, coster.LinkFactor(s.from, cand))
		}
	}

	// Join cost at the candidate under each movement combination of the
	// remote sides; pick the cheapest combination.
	bestJoin := math.Inf(1)
	var bestMoves [2]Movement
	for _, combo := range movementCombos(sides[0].local, sides[1].local, opts.ForceMovement) {
		jc := a.joinCostAt(ctx, coster, memo, cand, j, sides[0].op, sides[1].op, combo[0] == MoveImplicit && !sides[0].local, combo[1] == MoveImplicit && !sides[1].local)
		// Explicit sides pay the materialization write plus the scan of
		// the stored copy (Eq. 3's scanCost term; the write is the same
		// volume).
		for i, mv := range combo {
			if !sides[i].local && mv == MoveExplicit {
				jc += 2 * a.probe(ctx, coster, memo, cand, engine.CostScan, sides[i].op.Est(), 0, 0)
			}
		}
		if jc < bestJoin {
			bestJoin = jc
			bestMoves = combo
		}
	}
	total += bestJoin
	d.moveL, d.moveR = bestMoves[0], bestMoves[1]
	d.cost = total
	return d
}

// moveVerdict spells a movement out for trace attributes.
func moveVerdict(m Movement) string {
	if m == MoveExplicit {
		return "explicit"
	}
	return "implicit"
}

// movementCombos enumerates the movement choices for the two sides (local
// sides are pinned to implicit).
func movementCombos(lLocal, rLocal bool, force Movement) [][2]Movement {
	options := func(local bool) []Movement {
		if local {
			return []Movement{MoveImplicit}
		}
		if force != 0 {
			return []Movement{force}
		}
		return []Movement{MoveImplicit, MoveExplicit}
	}
	var out [][2]Movement
	for _, l := range options(lLocal) {
		for _, r := range options(rLocal) {
			out = append(out, [2]Movement{l, r})
		}
	}
	return out
}

// joinCostAt consults the candidate DBMS for the join cost given which
// inputs arrive as streams.
func (a *Annotation) joinCostAt(ctx context.Context, coster Coster, memo map[consultKey]float64, cand string, j *Join, l, r Op, lStream, rStream bool) float64 {
	out := j.Est()
	var kind engine.CostKind
	var left, right float64
	switch {
	case lStream && rStream:
		// Both inputs stream (only possible with the full candidate set):
		// the larger stream probes a build over the smaller, which must
		// first be buffered — price as a stream join plus a scan of the
		// buffered side.
		big, small := l.Est(), r.Est()
		if big < small {
			big, small = small, big
		}
		kind, left, right = engine.CostJoinStream, big, small
	case lStream:
		kind, left, right = engine.CostJoinStream, l.Est(), r.Est()
	case rStream:
		kind, left, right = engine.CostJoinStream, r.Est(), l.Est()
	default:
		kind, left, right = engine.CostJoin, l.Est(), r.Est()
	}
	return a.probe(ctx, coster, memo, cand, kind, left, right, out)
}

// probe consults one DBMS for an operator cost, falling back to the local
// cost model when the node cannot answer — an erroring probe or an open
// breaker must degrade the estimate, not abort the plan (the middleware
// owns failure handling for the engines it coordinates). Fallbacks are
// counted in DegradedProbes; only real round trips count as consult
// rounds. Before spending a round trip, the probe is served from the
// per-decision memo (exact-argument dedupe, always on) and then from the
// cross-query consult cache (Options.ConsultCacheTTL); both count in
// CachedProbes with span outcome=cached. Failed probes memoize their
// local fallback within the decision — re-asking a node that just failed
// would only burn another round trip — but never reach the shared cache.
func (a *Annotation) probe(ctx context.Context, coster Coster, memo map[consultKey]float64, node string, kind engine.CostKind, left, right, out float64) float64 {
	sp := obs.SpanFrom(ctx).Child("probe")
	sp.Set("node", node)
	sp.Set("kind", string(kind))
	if !coster.Healthy(node) {
		a.addDegraded(1)
		sp.Set("outcome", "degraded_breaker")
		sp.Finish()
		return localCost(kind, left, right, out)
	}
	key := consultKey{node: node, kind: kind, left: left, right: right, out: out}
	if memo != nil {
		if v, ok := memo[key]; ok {
			a.addCached()
			sp.Set("outcome", "cached")
			sp.Finish()
			return v
		}
	}
	if a.cache != nil {
		if v, ok := a.cache.LookupCost(node, kind, left, right, out); ok {
			if memo != nil {
				memo[key] = v
			}
			a.addCached()
			sp.Set("outcome", "cached")
			sp.Finish()
			return v
		}
	}
	a.addConsult()
	start := time.Now()
	c, err := coster.CostOperator(ctx, node, kind, left, right, out)
	observeSeconds(met.probeDur, time.Since(start))
	if err != nil {
		a.addDegraded(1)
		c = localCost(kind, left, right, out)
		if memo != nil {
			memo[key] = c
		}
		sp.Set("outcome", "degraded_error")
		sp.SetErr(err)
		sp.Finish()
		return c
	}
	if memo != nil {
		memo[key] = c
	}
	if a.cache != nil {
		a.cache.StoreCost(node, kind, left, right, out, c)
	}
	sp.Set("outcome", "consulted")
	sp.Finish()
	return c
}

// localCost is the middleware's own calibrated cost model: the same
// textbook shapes the emulated engines price, in the common currency the
// calibration normalizes to (a scan of N rows costs N units). It is the
// degraded-mode stand-in when a DBMS cannot be consulted, and is vendor-
// blind — exactly the information loss that makes consulting worth its
// round trips when the engines are reachable.
func localCost(kind engine.CostKind, left, right, out float64) float64 {
	switch kind {
	case engine.CostJoin:
		small, big := left, right
		if small > big {
			small, big = big, small
		}
		return small*1.5 + big*1.0 + out*0.5
	case engine.CostJoinStream:
		// The streamed (left) side probes a build over the local right.
		return right*1.5 + left*1.0 + out*0.5
	case engine.CostAgg:
		return left * 1.2
	default: // CostScan and anything unknown: linear in input.
		return left
	}
}

// moveCost prices shipping an operator's output across a link (Eq. 2's
// moveCost term).
func moveCost(op Op, linkFactor float64) float64 {
	if linkFactor < 1 {
		linkFactor = 1
	}
	return op.Est() * (cMovePerRow + op.Width()*cMovePerByte) * linkFactor
}
