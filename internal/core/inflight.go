package core

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"xdb/internal/wire"
)

// Live query introspection. Every admitted query registers in its
// System's in-flight registry; every deployment attempt attaches its qid
// and plan-edge metadata; and the wire layer's flow sink routes per-frame
// accounting events (rows, bytes, frames per attributed stream — see
// internal/wire/flow.go) to the owning entry. The registry answers
// System.Inflight() and the /debug/queries endpoint while the query
// runs, and its accumulated per-edge flows become Result.Flows — the
// observed half of EXPLAIN ANALYZE — when it finishes.

// qidSeq allocates query ids process-wide. Deployed object names
// (xdb<qid>_*) and flow attribution both key on the qid, and several
// Systems can share one process (tests, embedded setups), so the
// sequence must never restart per System.
var qidSeq atomic.Int64

// nextQID returns a fresh process-unique query id.
func nextQID() int64 { return qidSeq.Add(1) }

// flowRouter maps live qids to their registry entries so the process-wide
// wire sink can attribute events without a System in hand. A plan-cache
// deployment shared by concurrent queries reuses one qid; the latest
// registrant wins the route for the overlap (see DESIGN.md §15), but the
// overlap is remembered in shared: while two live queries contend for one
// qid, per-query attribution would be a lie, so the streams are marked
// kind=shared instead of being silently credited to the newest query, and
// xdb_edge_attr_ambiguous_total counts each detected overlap.
var flowRouter = struct {
	sync.RWMutex
	m      map[int64]*inflightEntry
	shared map[int64]bool
}{m: map[int64]*inflightEntry{}, shared: map[int64]bool{}}

// coreFlowSink is the wire.FlowSink the core installs at package init.
type coreFlowSink struct{}

func (coreFlowSink) FlowEvent(ev wire.FlowEvent) {
	flowRouter.RLock()
	ent := flowRouter.m[ev.QID]
	shared := flowRouter.shared[ev.QID]
	flowRouter.RUnlock()
	if ent != nil {
		ent.applyFlow(ev, shared)
	}
}

func init() { wire.SetFlowSink(coreFlowSink{}) }

// flowKey identifies one attributed stream within a query: which attempt
// (qid), which producing task, and whether the stream read the task's
// view (a pull or the root fetch) or its foreign table (a barrier count).
type flowKey struct {
	qid  int64
	task int
	ft   bool
}

// EdgeFlow is the observed wire traffic of one attributed stream — the
// flow-accounting snapshot of a delegation-plan edge. Rows/bytes/frames
// are counted independently at both ends of the wire; the receiving end
// is authoritative (it matches the repo's client-side accounting
// convention), the sending end fills in when the consumer never finished
// draining.
type EdgeFlow struct {
	QID  int64  `json:"qid"`
	Task int    `json:"task"`
	Rel  string `json:"rel"`
	Kind string `json:"kind"` // implicit | explicit | barrier | result | shared | unknown
	From string `json:"from,omitempty"`
	To   string `json:"to,omitempty"`
	// Sig is the producing edge's logical signature (the PR 8 feedback
	// key); empty for result-delivery and unattributed flows.
	Sig string `json:"sig,omitempty"`
	// EstRows is the planner's estimate for the edge; 0 when unknown.
	EstRows float64 `json:"est_rows,omitempty"`

	RowsRecv   int64 `json:"rows_recv"`
	BytesRecv  int64 `json:"bytes_recv"`
	FramesRecv int64 `json:"frames_recv"`
	RowsSent   int64 `json:"rows_sent"`
	BytesSent  int64 `json:"bytes_sent"`
	FramesSent int64 `json:"frames_sent"`
	// Done marks a stream that reached a clean end of stream; Rows* then
	// carry the server's authoritative total at the end(s) that saw it.
	Done bool `json:"done"`
}

// Rows returns the observed row count: the receiving end when it saw
// traffic, else the sending end.
func (f EdgeFlow) Rows() int64 {
	if f.FramesRecv > 0 {
		return f.RowsRecv
	}
	return f.RowsSent
}

// Bytes returns the observed wire bytes, preferring the receiving end.
func (f EdgeFlow) Bytes() int64 {
	if f.FramesRecv > 0 {
		return f.BytesRecv
	}
	return f.BytesSent
}

// edgeMeta is what an attached plan knows about one producing task's
// outbound edge, resolved when that task's stream first flows.
type edgeMeta struct {
	kind     string
	est      float64
	sig      string
	from, to string
}

// attemptMeta is the plan-shape index of one deployment attempt.
type attemptMeta struct {
	root  int
	edges map[int]edgeMeta // keyed by producing task id
}

// InflightQuery is one registered query's public snapshot.
type InflightQuery struct {
	ID      int64         `json:"id"`
	SQL     string        `json:"sql"`
	Phase   string        `json:"phase"`
	Elapsed time.Duration `json:"elapsed_ns"`
	// PlanShape summarizes the current attempt's plan ("tasks=N root=X
	// moves=Ii/Ee"); empty until the first plan is attached.
	PlanShape      string     `json:"plan_shape,omitempty"`
	Attempt        int        `json:"attempt"`
	Replans        int        `json:"replans"`
	Reopts         int        `json:"reopts"`
	EstimateErrors int        `json:"estimate_errors"`
	PlanCacheHit   bool       `json:"plan_cache_hit"`
	Edges          []EdgeFlow `json:"edges,omitempty"`
}

// inflightEntry is one admitted query's live record.
type inflightEntry struct {
	id    int64
	sql   string
	start time.Time

	mu        sync.Mutex
	phase     string
	shape     string
	attempt   int
	replans   int
	reopts    int
	estErrors int
	cacheHit  bool
	qids      []int64
	attempts  map[int64]*attemptMeta
	flows     map[flowKey]*EdgeFlow
}

// setPhase moves the query to a new lifecycle phase and syncs the
// budget counters the inspector shows. Nil-safe.
func (e *inflightEntry) setPhase(phase string, bd *Breakdown, attempt int) {
	if e == nil {
		return
	}
	e.mu.Lock()
	e.phase = phase
	e.attempt = attempt
	if bd != nil {
		e.replans = bd.Replans
		e.reopts = bd.Reopts
		e.estErrors = bd.EstimateErrors
		e.cacheHit = bd.PlanCacheHit
	}
	e.mu.Unlock()
}

// attach records one deployment attempt's qid and plan-edge metadata and
// routes the qid's flow events to this entry. Nil-safe.
func (e *inflightEntry) attach(qid int64, plan *Plan) {
	if e == nil || plan == nil || plan.Root == nil {
		return
	}
	am := &attemptMeta{root: plan.Root.ID, edges: map[int]edgeMeta{}}
	for _, edge := range plan.Edges {
		kind := "implicit"
		if edge.Move == MoveExplicit {
			kind = "explicit"
		}
		am.edges[edge.From.ID] = edgeMeta{
			kind: kind,
			est:  edge.EstRows,
			sig:  edge.Sig,
			from: edge.From.Node,
			to:   edge.To.Node,
		}
	}
	e.mu.Lock()
	e.attempts[qid] = am
	e.qids = append(e.qids, qid)
	e.shape = planShape(plan)
	e.mu.Unlock()
	flowRouter.Lock()
	if prev := flowRouter.m[qid]; prev != nil && prev != e {
		// Two live queries share one warm deployment's qid: whichever rows
		// flow now cannot honestly be credited to either. Mark the qid
		// ambiguous — its streams render kind=shared — rather than silently
		// attributing a shared stream to the newest registrant.
		flowRouter.shared[qid] = true
		met.edgeAttrAmbiguous.Inc()
	}
	flowRouter.m[qid] = e
	flowRouter.Unlock()
}

// applyFlow folds one wire flow event into the entry's per-edge counters
// and the process-wide edge metrics. shared marks a qid contended by two
// live queries (see flowRouter): the stream's traffic is still counted,
// but under kind=shared with the per-query attribution (estimate,
// signature) withheld — it belongs to neither query alone.
func (e *inflightEntry) applyFlow(ev wire.FlowEvent, shared bool) {
	key := flowKey{qid: ev.QID, task: ev.Task, ft: ev.FT}
	e.mu.Lock()
	fl := e.flows[key]
	if fl == nil {
		fl = &EdgeFlow{QID: ev.QID, Task: ev.Task, Rel: ev.Rel, Kind: "unknown"}
		if am := e.attempts[ev.QID]; am != nil {
			switch {
			case ev.FT:
				fl.Kind = "barrier"
				if m, ok := am.edges[ev.Task]; ok {
					fl.Sig = m.sig
				}
			case ev.Task == am.root:
				fl.Kind = "result"
			default:
				if m, ok := am.edges[ev.Task]; ok {
					fl.Kind = m.kind
					fl.EstRows = m.est
					fl.Sig = m.sig
					fl.From, fl.To = m.from, m.to
				}
			}
		} else if ev.FT {
			fl.Kind = "barrier"
		}
		e.flows[key] = fl
	}
	if shared && fl.Kind != "shared" {
		fl.Kind = "shared"
		fl.EstRows = 0
		fl.Sig = ""
	}
	if fl.From == "" && ev.From != "" {
		fl.From = ev.From
	}
	if fl.To == "" && ev.To != "" {
		fl.To = ev.To
	}
	switch ev.End {
	case wire.FlowRecv:
		if ev.EOS {
			fl.Done = true
			// The terminal frame carries the server's stream total — an
			// authoritative overwrite, not an increment.
			fl.RowsRecv = ev.Rows
		} else {
			fl.RowsRecv += ev.Rows
		}
		fl.BytesRecv += ev.Bytes
		fl.FramesRecv += ev.Frame
	case wire.FlowSend:
		if ev.EOS {
			fl.Done = true
			fl.RowsSent = ev.Rows
		} else {
			fl.RowsSent += ev.Rows
		}
		fl.BytesSent += ev.Bytes
		fl.FramesSent += ev.Frame
	}
	kind := fl.Kind
	e.mu.Unlock()

	// Process-wide metrics count the receiving end only, so a frame moved
	// between two instrumented nodes is counted once — the flow mirror of
	// the wire's client-side byte accounting.
	if ev.End == wire.FlowRecv {
		if !ev.EOS {
			met.edgeRows.With(kind).Add(ev.Rows)
		}
		met.edgeBytes.With(kind).Add(ev.Bytes)
	}
}

// flowObserved returns the receiving end's observed rows for one
// attempt's task pull, and whether the stream finished cleanly.
func (e *inflightEntry) flowObserved(qid int64, task int) (int64, bool) {
	if e == nil {
		return 0, false
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	fl := e.flows[flowKey{qid: qid, task: task}]
	// A shared stream's counters span every query contending for the
	// qid, so its total is not this query's cardinality — refuse to
	// report it rather than feed a cross-query sum into stats feedback.
	if fl == nil || !fl.Done || fl.Kind == "shared" {
		return 0, false
	}
	return fl.Rows(), true
}

// flowsSnapshot copies the entry's per-edge flows, sorted by attempt,
// task, then stream kind.
func (e *inflightEntry) flowsSnapshot() []EdgeFlow {
	if e == nil {
		return nil
	}
	e.mu.Lock()
	out := make([]EdgeFlow, 0, len(e.flows))
	for _, fl := range e.flows {
		out = append(out, *fl)
	}
	e.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].QID != out[j].QID {
			return out[i].QID < out[j].QID
		}
		if out[i].Task != out[j].Task {
			return out[i].Task < out[j].Task
		}
		return out[i].Rel < out[j].Rel
	})
	return out
}

// snapshot renders the entry as its public form.
func (e *inflightEntry) snapshot() InflightQuery {
	e.mu.Lock()
	q := InflightQuery{
		ID:             e.id,
		SQL:            e.sql,
		Phase:          e.phase,
		Elapsed:        time.Since(e.start),
		PlanShape:      e.shape,
		Attempt:        e.attempt,
		Replans:        e.replans,
		Reopts:         e.reopts,
		EstimateErrors: e.estErrors,
		PlanCacheHit:   e.cacheHit,
	}
	e.mu.Unlock()
	q.Edges = e.flowsSnapshot()
	return q
}

// inflightRegistry is one System's set of admitted, unfinished queries.
type inflightRegistry struct {
	mu      sync.Mutex
	entries map[int64]*inflightEntry
}

func newInflightRegistry() *inflightRegistry {
	return &inflightRegistry{entries: map[int64]*inflightEntry{}}
}

// register admits one query into the registry.
func (r *inflightRegistry) register(sql string) *inflightEntry {
	ent := &inflightEntry{
		id:       nextQID(),
		sql:      sql,
		start:    time.Now(),
		phase:    "admitted",
		attempts: map[int64]*attemptMeta{},
		flows:    map[flowKey]*EdgeFlow{},
	}
	r.mu.Lock()
	r.entries[ent.id] = ent
	r.mu.Unlock()
	return ent
}

// deregister removes the entry and unroutes its qids. An entry that lost
// a qid to a later registrant (shared warm deployment) leaves that route
// alone. Nil-safe; idempotent.
func (r *inflightRegistry) deregister(ent *inflightEntry) {
	if ent == nil {
		return
	}
	r.mu.Lock()
	delete(r.entries, ent.id)
	r.mu.Unlock()
	ent.mu.Lock()
	qids := append([]int64(nil), ent.qids...)
	ent.mu.Unlock()
	if len(qids) == 0 {
		return
	}
	flowRouter.Lock()
	for _, q := range qids {
		if flowRouter.m[q] == ent {
			delete(flowRouter.m, q)
			delete(flowRouter.shared, q)
		}
	}
	flowRouter.Unlock()
}

// size returns the number of registered queries.
func (r *inflightRegistry) size() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.entries)
}

// list snapshots the registered entries.
func (r *inflightRegistry) list() []*inflightEntry {
	r.mu.Lock()
	out := make([]*inflightEntry, 0, len(r.entries))
	for _, e := range r.entries {
		out = append(out, e)
	}
	r.mu.Unlock()
	return out
}

// Inflight returns a coherent snapshot of every query currently admitted
// to this System — id, SQL, phase, plan shape, budgets spent, elapsed
// time, and per-edge live flow counters — sorted by registration order.
func (s *System) Inflight() []InflightQuery {
	ents := s.inflight.list()
	out := make([]InflightQuery, 0, len(ents))
	for _, e := range ents {
		out = append(out, e.snapshot())
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// handleDebugQueries serves the in-flight snapshot: JSON by default,
// plain text with ?format=text.
func (s *System) handleDebugQueries(w http.ResponseWriter, r *http.Request) {
	qs := s.Inflight()
	if r.URL.Query().Get("format") == "text" {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprint(w, FormatInflight(qs))
		return
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(qs)
}

// FormatInflight renders an in-flight snapshot for a terminal — the
// rendering behind /debug/queries?format=text and cmd/xdb -inspect.
func FormatInflight(qs []InflightQuery) string {
	if len(qs) == 0 {
		return "no queries in flight\n"
	}
	var b strings.Builder
	for _, q := range qs {
		fmt.Fprintf(&b, "#%d [%s] %s (elapsed %v", q.ID, q.Phase, truncateSQL(q.SQL),
			q.Elapsed.Round(time.Millisecond))
		if q.PlanCacheHit {
			b.WriteString(", plan-cache hit")
		}
		if q.Replans > 0 {
			fmt.Fprintf(&b, ", replans %d", q.Replans)
		}
		if q.Reopts > 0 {
			fmt.Fprintf(&b, ", reopts %d", q.Reopts)
		}
		b.WriteString(")\n")
		if q.PlanShape != "" {
			fmt.Fprintf(&b, "  plan: %s (attempt %d)\n", q.PlanShape, q.Attempt+1)
		}
		for _, f := range q.Edges {
			state := "streaming"
			if f.Done {
				state = "done"
			}
			route := ""
			if f.From != "" || f.To != "" {
				route = fmt.Sprintf(" %s->%s", f.From, f.To)
			}
			est := ""
			if f.EstRows > 0 {
				est = fmt.Sprintf(" est %.0f", f.EstRows)
			}
			fmt.Fprintf(&b, "  edge %s (%s%s):%s rows %d, %.1f KB, %d frames [%s]\n",
				f.Rel, f.Kind, route, est, f.Rows(), float64(f.Bytes())/1024,
				f.FramesRecv+f.FramesSent, state)
		}
	}
	return b.String()
}
