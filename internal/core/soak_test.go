package core

import (
	"context"
	"errors"
	"runtime"
	"sync"
	"testing"
	"time"
)

// The concurrency soak: the chaos cluster (chaos_test.go) driven by many
// concurrent clients instead of injected faults. Every scenario runs
// under -race via `make soak` and asserts the overload invariants: each
// query either executes or is shed fast with a typed error, no goroutine
// outlives its query, no engine keeps xdb* objects once the dust settles,
// and every wire client closes as many connections as it dialed.

// soakOptions bound the soak cluster tight enough that 64 clients against
// MaxInFlight=4 resolve in seconds.
func soakOptions() Options {
	opts := chaosOptions()
	opts.QueryTimeout = 10 * time.Second
	opts.MaxInFlight = 4
	opts.MaxQueue = 8
	opts.MaxPerNode = 2
	// Tracing on: the soak runs double as the race check for concurrent
	// span construction (sibling DDL spans finish from the deploy
	// fan-out's goroutines).
	opts.Trace = true
	// Consult cache on: concurrent queries exercise the shared cache and
	// the parallel probe fan-out under -race.
	opts.ConsultCacheTTL = time.Minute
	return opts
}

// TestSoakBurst fires 64 concurrent queries at MaxInFlight=4/MaxQueue=8:
// every caller must either succeed (possibly after queueing) or be shed
// with an OverloadError before its deadline — never hang, never leak.
func TestSoakBurst(t *testing.T) {
	cl := newChaosCluster(t, soakOptions())
	cl.sys.CacheStats = true
	if _, err := cl.sys.Query(chaosQuery); err != nil {
		t.Fatal(err) // warm: calibration, stats cache, pool
	}
	warm := cl.sys.AdmissionStats()

	before := runtime.NumGoroutine()

	const burst = 64
	var (
		mu               sync.Mutex
		ok, queued, shed int
	)
	var wg sync.WaitGroup
	for i := 0; i < burst; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			res, err := cl.sys.QueryContext(context.Background(), chaosQuery)
			mu.Lock()
			defer mu.Unlock()
			var oe *OverloadError
			switch {
			case err == nil:
				ok++
				if res.Breakdown.Queued {
					queued++
				}
			case errors.As(err, &oe):
				shed++
			default:
				t.Errorf("burst query failed with untyped error: %v", err)
			}
		}()
	}
	wg.Wait()
	t.Logf("burst: %d ok (%d queued first), %d shed", ok, queued, shed)
	if ok == 0 {
		t.Error("no query survived the burst")
	}
	if ok+shed != burst {
		t.Errorf("ok+shed = %d, want %d", ok+shed, burst)
	}

	st := cl.sys.AdmissionStats()
	if st.InFlight != 0 || st.Queued != 0 {
		t.Errorf("controller not empty after burst: %+v", st)
	}
	if got := st.Admitted - warm.Admitted; got != int64(ok) {
		t.Errorf("Admitted grew by %d, want %d", got, ok)
	}
	if st.Admitted != st.Completed {
		t.Errorf("Admitted=%d != Completed=%d with nothing in flight", st.Admitted, st.Completed)
	}
	if got := st.ShedOverload + st.ShedQueueTimeout; got != int64(shed) {
		t.Errorf("shed counters sum to %d, want %d", got, shed)
	}
	if st.PeakInFlight > 4 {
		t.Errorf("PeakInFlight = %d, exceeds MaxInFlight=4", st.PeakInFlight)
	}
	if st.PeakQueued > 8 {
		t.Errorf("PeakQueued = %d, exceeds MaxQueue=8", st.PeakQueued)
	}

	// No goroutine may outlive its query (modest tolerance for runtime and
	// pool housekeeping).
	waitForGoroutines(t, before+10)

	// Drain: returns with nothing in flight, then refuses queries.
	dctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := cl.sys.Drain(dctx); err != nil {
		t.Fatalf("drain after burst: %v", err)
	}
	var de *DrainingError
	if _, err := cl.sys.QueryContext(context.Background(), chaosQuery); !errors.As(err, &de) {
		t.Errorf("post-drain query error = %v, want *DrainingError", err)
	}
	cl.assertNoXDBObjects(t)
	assertIntrospectionDrained(t, cl.sys)

	cl.close()
	cl.assertTransportBalanced(t)
}

// TestSoakCancelMidDeployment cancels query contexts at staggered points
// across the lifecycle — planning, delegation, execution — and verifies a
// cancelled query never parks an avoidable orphan: cleanup runs detached,
// and one sweep leaves every engine free of xdb* objects.
func TestSoakCancelMidDeployment(t *testing.T) {
	opts := chaosOptions()
	opts.MaxPerNode = 2
	cl := newChaosCluster(t, opts)
	cl.sys.CacheStats = true
	if _, err := cl.sys.Query(chaosQuery); err != nil {
		t.Fatal(err)
	}

	// Measure a healthy query to spread cancellation points across its
	// lifetime rather than guessing absolute delays.
	start := time.Now()
	if _, err := cl.sys.Query(chaosQuery); err != nil {
		t.Fatal(err)
	}
	span := time.Since(start)

	var cancelled, completed int
	for i := 0; i < 16; i++ {
		delay := span * time.Duration(i) / 16
		ctx, cancel := context.WithCancel(context.Background())
		timer := time.AfterFunc(delay, cancel)
		_, err := cl.sys.QueryContext(ctx, chaosQuery)
		timer.Stop()
		cancel()
		switch {
		case err == nil:
			completed++ // cancel landed after the query finished
		case errors.Is(err, context.Canceled):
			cancelled++
		default:
			t.Errorf("iteration %d (delay %v): unexpected error: %v", i, delay, err)
		}
	}
	t.Logf("staggered cancels: %d cancelled, %d completed", cancelled, completed)
	if cancelled == 0 {
		t.Error("no cancellation landed mid-query; staggering too coarse")
	}

	// Deterministic edge: an already-cancelled context must fail fast
	// without deploying anything.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := cl.sys.QueryContext(ctx, chaosQuery); err == nil {
		t.Error("query with pre-cancelled context succeeded")
	}

	// Cancelled queries clean up on a detached context; whatever drops
	// raced the shutdown are parked and one sweep collects them.
	if _, remaining, err := cl.sys.SweepOrphans(); err != nil || remaining != 0 {
		t.Errorf("sweep after cancels: remaining=%d err=%v", remaining, err)
	}
	cl.assertNoXDBObjects(t)
	assertIntrospectionDrained(t, cl.sys)

	cl.close()
	cl.assertTransportBalanced(t)
}

// TestSoakDrainUnderLoad starts a drain while a burst is still in flight:
// Drain must wait out the admitted queries, reject the queued ones, and
// leave the cluster clean.
func TestSoakDrainUnderLoad(t *testing.T) {
	cl := newChaosCluster(t, soakOptions())
	cl.sys.CacheStats = true
	if _, err := cl.sys.Query(chaosQuery); err != nil {
		t.Fatal(err)
	}

	const burst = 24
	results := make(chan error, burst)
	var wg sync.WaitGroup
	for i := 0; i < burst; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, err := cl.sys.QueryContext(context.Background(), chaosQuery)
			results <- err
		}()
	}
	// Let the burst occupy the controller before draining.
	waitFor(t, 5*time.Second, func() bool { return cl.sys.AdmissionStats().InFlight > 0 })

	dctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	if err := cl.sys.Drain(dctx); err != nil {
		t.Fatalf("drain under load: %v", err)
	}
	if st := cl.sys.AdmissionStats(); st.InFlight != 0 || st.Queued != 0 {
		t.Errorf("drain returned with work outstanding: %+v", st)
	}
	wg.Wait()
	close(results)
	var ok, overload, draining int
	for err := range results {
		var oe *OverloadError
		var de *DrainingError
		switch {
		case err == nil:
			ok++
		case errors.As(err, &oe):
			overload++
		case errors.As(err, &de):
			draining++
		default:
			t.Errorf("burst query failed with untyped error: %v", err)
		}
	}
	t.Logf("drain under load: %d ok, %d overload, %d rejected by drain", ok, overload, draining)
	if ok == 0 {
		t.Error("drain cancelled every in-flight query; want admitted ones to finish")
	}
	cl.assertNoXDBObjects(t)
	assertIntrospectionDrained(t, cl.sys)

	cl.close()
	cl.assertTransportBalanced(t)
}

// waitForGoroutines waits for the goroutine count to settle at or below
// limit, failing the test if it never does.
func waitForGoroutines(t *testing.T, limit int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		n := runtime.NumGoroutine()
		if n <= limit {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			t.Fatalf("goroutine leak: %d alive, want <= %d\n%s",
				n, limit, buf[:runtime.Stack(buf, true)])
		}
		runtime.GC()
		time.Sleep(20 * time.Millisecond)
	}
}
