GO ?= go

.PHONY: build test race vet bench bench-transport bench-obs bench-annotate bench-deploy bench-reopt bench-sample chaos chaos-failover chaos-reopt chaos-inspect chaos-sample soak check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# The transport and delegation layers carry the concurrency-sensitive
# code (connection pool checkout, parallel delegation, server-registration
# dedupe); run them under the race detector.
race:
	$(GO) vet ./...
	$(GO) test -race ./internal/wire/... ./internal/core/...

# Chaos drill: kill / partition / flaky-link scenarios against a live
# cluster, under the race detector. The flaky-link test pins the fault
# seed (netsim.SetFaultSeed), so drops are reproducible across runs.
chaos:
	$(GO) test -race -count=1 -v -run 'TestChaos' ./internal/core/

# Failover drill: mid-query node kills, slow (wedged-but-alive) nodes,
# suffix re-planning, and the mediator fallback, under the race detector
# (DESIGN.md "Mid-query failover").
chaos-failover:
	$(GO) test -race -count=1 -v -run 'TestFailover|TestChaosPartitionMidStream|TestTraceFailoverWellFormed' ./internal/core/

# Re-optimization drill: skewed statistics, threshold boundaries,
# cross-query stats feedback, and a node kill in the middle of a
# re-optimization, under the race detector (DESIGN.md "Adaptive
# mid-query re-optimization").
chaos-reopt:
	$(GO) test -race -count=1 -v -run 'TestReopt' ./internal/core/

# Introspection drill: live registry lifecycle, /debug/queries under a
# running query, implicit-edge flow feedback, EXPLAIN ANALYZE, and the
# registry-drain invariants across failover and cancellation, under the
# race detector (DESIGN.md "Flow accounting and live introspection").
chaos-inspect:
	$(GO) test -race -count=1 -v -run 'TestInflight|TestImplicitFlow|TestAnalyzeShows|TestChaosInflight|TestFlow|TestParseStreamRel|TestTransportByAddr' ./internal/core/ ./internal/wire/

# Sampling drill: probe bounds and filters at the engine, the stats RPC
# round-trip, probe-driven first-run planning, cross-query feedback,
# breaker skips, and degraded probes, under the race detector
# (DESIGN.md "Sampling-based estimate refinement").
chaos-sample:
	$(GO) test -race -count=1 -v -run 'TestSample' ./internal/core/ ./internal/engine/ ./internal/wire/

# Concurrency soak: burst admission, staggered mid-query cancellation,
# and drain-under-load against a live cluster, under the race detector.
soak:
	$(GO) test -race -count=1 -v -run 'TestSoak' ./internal/core/

# Full experiment regeneration (slow; see EXPERIMENTS.md).
bench:
	$(GO) test -bench=. -benchtime=1x -timeout=2h .

# The pooled-vs-per-dial transport A/B (EXPERIMENTS.md "Wire transport").
bench-transport:
	$(GO) test -bench='BenchmarkProbe' -benchtime=2000x ./internal/wire/

# The tracing-overhead A/B: warm Q3 with the span tree off vs on
# (EXPERIMENTS.md "Observability overhead").
bench-obs:
	$(GO) test -bench='BenchmarkQueryTracing' -benchtime=200x -count=3 ./internal/core/

# The consultation A/B: serial vs parallel annotation and cold vs warm
# consult cache at real network speed (EXPERIMENTS.md "Consultation
# latency").
bench-annotate:
	$(GO) test -run '^$$' -bench='BenchmarkAnnotate' -benchtime=50x -count=1 ./internal/core/

# The deployment A/B: drop-per-query vs warm plan-cache reuse of deployed
# views at real network speed (EXPERIMENTS.md "Deployment latency").
bench-deploy:
	$(GO) test -run '^$$' -bench='BenchmarkDeploy' -benchtime=50x -count=1 ./internal/core/

# The barrier-overhead A/B: the same join with re-optimization off vs on,
# accurate vs skewed statistics (EXPERIMENTS.md "Adaptive
# re-optimization").
bench-reopt:
	$(GO) test -run '^$$' -bench='BenchmarkReopt' -benchtime=100x -count=1 ./internal/core/

# The sampling A/B: the same join with probes off vs on, accurate vs
# skewed statistics (EXPERIMENTS.md "Sampling-based refinement").
bench-sample:
	$(GO) test -run '^$$' -bench='BenchmarkSample' -benchtime=100x -count=1 ./internal/core/

check: build vet test
