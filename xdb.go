// Package xdb is the public API of the XDB reproduction — an in-situ
// cross-database query processing middleware (Gavriilidis et al., ICDE
// 2023) together with every substrate it runs on: emulated autonomous DBMS
// engines with SQL/MED foreign tables, a wire protocol with transfer
// accounting, a simulated network topology, and the Garlic/Presto/Sclera
// baseline architectures.
//
// The middleware itself is System (the cross-database optimizer plus the
// delegation engine). Most users want Cluster, which assembles a complete
// in-process deployment — N DBMS nodes served over TCP on a simulated
// topology — and exposes cross-database queries against it:
//
//	cluster, err := xdb.NewCluster([]string{"db1", "db2"}, xdb.ClusterConfig{})
//	defer cluster.Close()
//	cluster.Load("db1", "users", usersSchema, userRows)
//	cluster.Load("db2", "orders", ordersSchema, orderRows)
//	res, err := cluster.Query("SELECT u.name, COUNT(*) FROM users u, orders o " +
//	    "WHERE u.id = o.user_id GROUP BY u.name")
//
// Queries are optimized into delegation plans, deployed as views and
// foreign tables onto the underlying engines, and executed by the engines
// themselves in a decentralized pipeline — the middleware never touches a
// data row.
package xdb

import (
	"context"
	"net/http"
	"time"

	"xdb/internal/connector"
	"xdb/internal/core"
	"xdb/internal/engine"
	"xdb/internal/mediator"
	"xdb/internal/netsim"
	"xdb/internal/obs"
	"xdb/internal/sclera"
	"xdb/internal/sqltypes"
	"xdb/internal/testbed"
	"xdb/internal/tpch"
	"xdb/internal/wire"
)

// Re-exported middleware types. See the internal/core package for the
// optimizer and delegation internals.
type (
	// System is the XDB middleware: optimizer + delegation engine.
	System = core.System
	// Options tunes the optimizer; the zero value is the paper's
	// configuration, non-defaults drive the ablation studies.
	Options = core.Options
	// Result is a completed cross-database query with its delegation
	// plan and phase breakdown.
	Result = core.Result
	// Breakdown is the per-phase timing of one query (prep / lopt / ann
	// / deleg / exec), matching Fig. 15.
	Breakdown = core.Breakdown
	// Plan is a delegation plan: tasks pinned to DBMSes with
	// implicit/explicit dataflow edges.
	Plan = core.Plan
	// Task is one delegation-plan node.
	Task = core.Task
	// Movement labels a dataflow edge (implicit = pipelined, explicit =
	// materialized).
	Movement = core.Movement
	// Connector is XDB's per-DBMS access path.
	Connector = connector.Connector
	// Vendor identifies an emulated DBMS product (postgres, mariadb,
	// hive).
	Vendor = engine.Vendor
	// Schema describes a relation's columns.
	Schema = sqltypes.Schema
	// Column is one column of a schema.
	Column = sqltypes.Column
	// Row is one tuple.
	Row = sqltypes.Row
	// Value is one SQL value.
	Value = sqltypes.Value
	// Topology is the simulated network.
	Topology = netsim.Topology
	// WireConfig tunes the middleware's wire transport: connection pool
	// bounds, request deadlines, and the retry policy (Options.Wire).
	WireConfig = wire.ClientConfig
	// TransportStats is a snapshot of a wire client's connection-level
	// counters (dials, reuses, retries, timeouts).
	TransportStats = wire.TransportStats
	// Site is a location in the simulated topology; fault injection
	// (partitions, flaky links) targets site pairs.
	Site = netsim.Site
	// Flake degrades one link with probabilistic frame loss and extra
	// delay.
	Flake = netsim.Flake
	// LinkSpec sets a link's bandwidth and latency (Cluster.SetLink);
	// placement follows link cost, so a slow link steers delegation.
	LinkSpec = netsim.LinkSpec
	// FaultError is the error surfaced by RPCs that crossed an injected
	// fault (crashed node, partition, dropped frame).
	FaultError = netsim.FaultError
	// NodeHealth is a snapshot of one DBMS node's circuit breaker and
	// RPC outcome counters (System.NodeHealth).
	NodeHealth = core.NodeHealth
	// BreakerState is a node's circuit state: closed, open, or half-open.
	BreakerState = core.BreakerState
	// NodeUnavailableError is returned when an RPC is refused because the
	// target node's breaker is open.
	NodeUnavailableError = core.NodeUnavailableError
	// Orphan is a short-lived relation whose drop failed, parked for the
	// janitor (System.Orphans / System.SweepOrphans).
	Orphan = core.Orphan
	// OverloadError is returned when admission control sheds a query:
	// the in-flight cap (Options.MaxInFlight) is reached and the wait
	// queue is full, or the caller's deadline expired while queued.
	OverloadError = core.OverloadError
	// DrainingError is returned for queries submitted while the system
	// is draining (System.Drain / Close).
	DrainingError = core.DrainingError
	// AdmissionStats is a snapshot of the admission controller:
	// occupancy, shed counters, and high-water marks
	// (System.AdmissionStats).
	AdmissionStats = core.AdmissionStats
	// SystemStats is one coherent snapshot of the middleware's
	// operational state: admission, per-node health, aggregated
	// transport counters, and pending orphans (System.Stats).
	SystemStats = core.SystemStats
	// ConsultCacheStats is the cross-query consult cache's occupancy and
	// hit/miss/eviction counters (Options.ConsultCacheTTL enables the
	// cache; System.ConsultCacheStats / SystemStats.ConsultCache).
	ConsultCacheStats = core.ConsultCacheStats
	// PlanCacheStats is the delegation-plan cache's occupancy, active
	// deployment leases, and hit/miss/eviction counters
	// (Options.PlanCacheSize enables the cache; System.PlanCacheStats /
	// SystemStats.PlanCache).
	PlanCacheStats = core.PlanCacheStats
	// Span is one timed node of a query's trace tree (Result.Trace when
	// Options.Trace is set): flame-style String(), JSON export, and
	// per-phase attributes. See internal/obs.
	Span = obs.Span
	// SpanJSON is the exported JSON shape of a trace span.
	SpanJSON = obs.SpanJSON
	// EdgeFlow is the live wire flow accounting of one plan edge: rows,
	// bytes, and frames observed at each end of the attributed stream
	// (Result.Flows, InflightQuery.Edges).
	EdgeFlow = core.EdgeFlow
	// InflightQuery is one entry of the live introspection registry: a
	// currently executing query with its phase, plan shape, budgets
	// spent, and per-edge flow counters (System.Inflight /
	// Cluster.Inflight; served as JSON on /debug/queries).
	InflightQuery = core.InflightQuery
)

// FormatInflight renders an in-flight snapshot the way the
// /debug/queries?format=text endpoint does — one block per query with
// its phase, plan shape, and per-edge flow counters.
func FormatInflight(qs []InflightQuery) string { return core.FormatInflight(qs) }

// MetricsHandler returns an http.Handler serving the process-wide metrics
// registry in Prometheus text format — every series the middleware
// records (queries, admission, probes, DDL, breakers, wire transport).
// Options.MetricsAddr serves the same handler on its own listener; use
// this to mount it on an existing mux instead.
func MetricsHandler() http.Handler { return obs.Default.Handler() }

// Circuit breaker states.
const (
	BreakerClosed   = core.BreakerClosed
	BreakerOpen     = core.BreakerOpen
	BreakerHalfOpen = core.BreakerHalfOpen
)

// Movement kinds.
const (
	MoveImplicit = core.MoveImplicit
	MoveExplicit = core.MoveExplicit
)

// DefaultReoptThreshold is the estimate-vs-actual cardinality ratio a
// materialized stage must exceed (strictly, either direction) to trigger
// a mid-query re-optimization when Options.ReoptThreshold is unset and
// Options.MaxReopts > 0.
const DefaultReoptThreshold = core.DefaultReoptThreshold

// Emulated vendors.
const (
	VendorPostgres = engine.VendorPostgres
	VendorMariaDB  = engine.VendorMariaDB
	VendorHive     = engine.VendorHive
	// VendorTest disables CPU throttling — for tests and examples that
	// care about semantics, not performance.
	VendorTest = engine.VendorTest
)

// Value constructors.
var (
	NewInt      = sqltypes.NewInt
	NewFloat    = sqltypes.NewFloat
	NewString   = sqltypes.NewString
	NewBool     = sqltypes.NewBool
	DateFromYMD = sqltypes.DateFromYMD
	ParseDate   = sqltypes.ParseDate
	Null        = sqltypes.Null
)

// Type tags for schema columns.
const (
	TypeInt    = sqltypes.TypeInt
	TypeFloat  = sqltypes.TypeFloat
	TypeString = sqltypes.TypeString
	TypeDate   = sqltypes.TypeDate
	TypeBool   = sqltypes.TypeBool
)

// NewSchema builds a schema from columns.
func NewSchema(cols ...Column) *Schema { return sqltypes.NewSchema(cols...) }

// FormatResult renders a result as an aligned text table.
func FormatResult(r *engine.Result) string {
	return sqltypes.FormatRows(r.Schema, r.Rows)
}

// NewSystem creates a bare middleware (register connectors and tables
// yourself). Most callers should use NewCluster instead.
func NewSystem(middlewareNode, clientNode string, topo *Topology, opts Options) *System {
	return core.NewSystem(middlewareNode, clientNode, topo, opts)
}

// Connect builds a connector to a DBMS engine served at addr, issuing
// requests from the given source node.
func Connect(node, addr string, vendor Vendor, fromNode string, topo *Topology) *Connector {
	return connector.New(node, addr, vendor, wire.NewClient(fromNode, topo))
}

// ClusterConfig configures a local in-process deployment.
type ClusterConfig struct {
	// Scenario places the nodes: "lan" (default), "onprem", or "geo" —
	// see internal/netsim.
	Scenario string
	// Vendors maps node names to vendors; unlisted nodes use
	// DefaultVendor (postgres when empty).
	Vendors map[string]Vendor
	// DefaultVendor is applied to unlisted nodes.
	DefaultVendor Vendor
	// Options tunes the XDB optimizer.
	Options Options
	// TimeScale divides network shaping delays (speeds up simulations
	// uniformly).
	TimeScale float64
}

// Cluster is a complete local deployment: DBMS engines served over TCP on
// a simulated topology, plus the XDB middleware wired to them.
type Cluster struct {
	tb *testbed.Testbed
	// tables records every loaded table's home node, so the baseline
	// systems can be wired with the same global schema.
	tables map[string]string
}

// NewCluster starts engines for the named nodes and wires up the
// middleware.
func NewCluster(nodes []string, cfg ClusterConfig) (*Cluster, error) {
	tb, err := testbed.New(nodes, testbed.Config{
		Scenario:      netsim.Scenario(cfg.Scenario),
		Vendors:       cfg.Vendors,
		DefaultVendor: cfg.DefaultVendor,
		Options:       cfg.Options,
		TimeScale:     cfg.TimeScale,
	})
	if err != nil {
		return nil, err
	}
	return &Cluster{tb: tb, tables: map[string]string{}}, nil
}

// Close shuts the cluster down.
func (c *Cluster) Close() { c.tb.Close() }

// System returns the middleware for advanced use.
func (c *Cluster) System() *System { return c.tb.System }

// Topology returns the simulated network (transfer ledger, link specs).
func (c *Cluster) Topology() *Topology { return c.tb.Topo }

// Load bulk-loads a table into a node's engine and registers it in the
// global catalog.
func (c *Cluster) Load(node, table string, schema *Schema, rows []Row) error {
	if err := c.tb.LoadTable(node, table, schema, rows); err != nil {
		return err
	}
	c.tables[table] = node
	return nil
}

// LoadTPCH generates and distributes TPC-H data: td names a distribution
// from the paper's Table III ("TD1", "TD2", "TD3") whose nodes must match
// the cluster's.
func (c *Cluster) LoadTPCH(td string, sf float64) error {
	dist, err := tpch.TD(td)
	if err != nil {
		return err
	}
	if err := c.tb.LoadTPCH(dist, sf, 42); err != nil {
		return err
	}
	for table, node := range dist {
		c.tables[table] = node
	}
	return nil
}

// Baseline system handles. Garlic and Presto follow the classic
// Mediator-Wrapper architecture (Fig. 4a of the paper); Sclera is the
// naive in-situ comparator that routes every intermediate through its
// coordinator.
type (
	// MediatorSystem is a Garlic- or Presto-style MW baseline.
	MediatorSystem = mediator.Mediator
	// MediatorStats reports a mediator execution's fetch/local split.
	MediatorStats = mediator.Stats
	// ScleraSystem is the naive in-situ baseline.
	ScleraSystem = sclera.Sclera
	// ScleraStats reports its movement/execution split.
	ScleraStats = sclera.Stats
)

// NewGarlic wires the Garlic baseline to this cluster's DBMSes, with the
// same table mapping as the middleware.
func (c *Cluster) NewGarlic() (*MediatorSystem, error) {
	m := mediator.NewGarlic(testbed.MiddlewareNode, c.tb.Topo, c.tb.Connectors())
	return m, c.registerAll(m.RegisterTable)
}

// NewPresto wires a Presto baseline with the given worker count.
func (c *Cluster) NewPresto(workers int) (*MediatorSystem, error) {
	m := mediator.NewPresto(testbed.MiddlewareNode, c.tb.Topo, c.tb.Connectors(), workers)
	return m, c.registerAll(m.RegisterTable)
}

// NewSclera wires the ScleraDB-like baseline.
func (c *Cluster) NewSclera() (*ScleraSystem, error) {
	s := sclera.New(sclera.Config{
		Node:       testbed.MiddlewareNode,
		Topo:       c.tb.Topo,
		Connectors: c.tb.Connectors(),
	})
	return s, c.registerAll(s.RegisterTable)
}

func (c *Cluster) registerAll(register func(table, node string) error) error {
	for table, node := range c.tables {
		if err := register(table, node); err != nil {
			return err
		}
	}
	return nil
}

// Query optimizes, delegates, and executes a cross-database query.
func (c *Cluster) Query(sql string) (*Result, error) {
	return c.tb.System.Query(sql)
}

// QueryContext is Query under the caller's context: cancellation aborts
// planning, delegation, and execution (cleanup still runs detached), and
// Options.QueryTimeout bounds the query end to end. Under overload the
// query may be shed with OverloadError; during drain with DrainingError.
func (c *Cluster) QueryContext(ctx context.Context, sql string) (*Result, error) {
	return c.tb.System.QueryContext(ctx, sql)
}

// Drain stops admitting queries, waits for the in-flight ones up to the
// context's deadline, and sweeps orphaned short-lived relations once.
func (c *Cluster) Drain(ctx context.Context) error {
	return c.tb.System.Drain(ctx)
}

// AdmissionStats reports the middleware's admission-control counters.
func (c *Cluster) AdmissionStats() AdmissionStats {
	return c.tb.System.AdmissionStats()
}

// Stats returns one coherent snapshot of the middleware's operational
// state: admission, per-node breaker health, aggregated wire transport
// counters, and orphans pending collection.
func (c *Cluster) Stats() SystemStats { return c.tb.System.Stats() }

// Inflight returns a snapshot of every query currently inside the
// middleware — admitted but not yet completed — with its phase, plan
// shape, budgets spent, and live per-edge flow counters. The same
// snapshot is served on /debug/queries when Options.MetricsAddr is set.
func (c *Cluster) Inflight() []InflightQuery { return c.tb.System.Inflight() }

// MetricsAddr returns the address of the middleware's metrics listener
// ("" unless Options.MetricsAddr was set and the listener started).
func (c *Cluster) MetricsAddr() string { return c.tb.System.MetricsAddr() }

// PlanOnly runs the optimizer pipeline without deploying anything.
func (c *Cluster) PlanOnly(sql string) (*Plan, *Breakdown, error) {
	return c.tb.System.Plan(sql)
}

// Describe renders the query's delegation plan with each task's SQL —
// XDB's EXPLAIN. Nothing is deployed.
func (c *Cluster) Describe(sql string) (string, error) {
	plan, _, err := c.tb.System.Plan(sql)
	if err != nil {
		return "", err
	}
	return plan.Describe()
}

// TransferTotal returns the bytes moved between distinct nodes since the
// last ResetTransfers.
func (c *Cluster) TransferTotal() int64 { return c.tb.Topo.Ledger().Total() }

// ResetTransfers clears the transfer ledger.
func (c *Cluster) ResetTransfers() { c.tb.ResetTransfers() }

// Fault injection. The knobs below manipulate the simulated network under
// a running cluster; the middleware's health tracking, degraded planning,
// and orphan-DDL janitor react to them exactly as they would to a real
// outage. See README "Fault injection & recovery".

// CrashNode makes every RPC from or to the node fail until ReviveNode.
func (c *Cluster) CrashNode(node string) { c.tb.Topo.CrashNode(node) }

// ReviveNode undoes CrashNode.
func (c *Cluster) ReviveNode(node string) { c.tb.Topo.ReviveNode(node) }

// PartitionSites severs the link between two sites (both directions).
func (c *Cluster) PartitionSites(a, b Site) { c.tb.Topo.PartitionSites(a, b) }

// SiteOf returns the site a node was placed on by the cluster's scenario.
func (c *Cluster) SiteOf(node string) Site { return c.tb.Topo.SiteOf(node) }

// Heal removes every site partition (crashed nodes stay crashed).
func (c *Cluster) Heal() { c.tb.Topo.Heal() }

// SetFlake degrades the link between two sites with probabilistic frame
// loss and extra delay; a zero Flake restores the link.
func (c *Cluster) SetFlake(a, b Site, f Flake) { c.tb.Topo.SetFlake(a, b, f) }

// SetLink overrides the bandwidth and latency of the link between two
// sites. Placement follows link cost, so a slow link steers delegation
// away from the pair.
func (c *Cluster) SetLink(a, b Site, spec LinkSpec) { c.tb.Topo.SetLink(a, b, spec) }

// SetFaultSeed fixes the RNG behind probabilistic faults, making flaky-
// link drops reproducible.
func (c *Cluster) SetFaultSeed(seed int64) { c.tb.Topo.SetFaultSeed(seed) }

// SlowNode stalls every frame from or to the node by the given wall-clock
// delay — a wedged-but-alive process, as opposed to CrashNode's dead one.
// A non-positive delay clears the stall. With Options.MaxReplans set, a
// stall past the request deadline triggers mid-query failover classified
// as "slow" rather than "fault".
func (c *Cluster) SlowNode(node string, delay time.Duration) { c.tb.Topo.SlowNode(node, delay) }

// SkewStats distorts the statistics a table's engine reports (RowCount
// and distinct counts scaled by factor) while scans keep returning the
// true rows — the stale-ANALYZE condition behind most cross-database
// misestimates. A factor of 1 removes the distortion. With
// Options.MaxReopts set, queries that materialize a stage whose actual
// cardinality contradicts the skewed estimate re-optimize their
// unexecuted suffix mid-query; see README "Robust to misestimation".
func (c *Cluster) SkewStats(table string, factor float64) error {
	return c.tb.SkewStats(table, factor)
}

// NodeHealth reports every DBMS node's breaker state and RPC counters.
func (c *Cluster) NodeHealth() map[string]NodeHealth { return c.tb.System.NodeHealth() }

// Orphans lists short-lived relations whose drops failed and await the
// janitor.
func (c *Cluster) Orphans() []Orphan { return c.tb.System.Orphans() }

// SweepOrphans retries every parked drop, returning how many were
// collected and how many remain.
func (c *Cluster) SweepOrphans() (dropped, remaining int, err error) {
	return c.tb.System.SweepOrphans()
}
